//! Aggregated metrics: the long-running complement to per-query traces.
//!
//! The [`crate::obs`] layer answers "what happened inside *this* query";
//! this module answers "what has this process been doing for the last
//! hour". A [`MetricsRegistry`] aggregates three primitive shapes:
//!
//! * [`Counter`] — a monotone total, sharded across cache-line-padded
//!   atomics so concurrent snapshot readers and the writer never contend
//!   on one word;
//! * [`Gauge`] — a point-in-time value (epoch version, cache sizes,
//!   checkpoint lag), one relaxed atomic;
//! * [`Histogram`] — a log-linear latency sketch with `p50/p90/p99/max`
//!   snapshot quantiles; recording is a handful of relaxed atomic RMWs,
//!   no lock, no allocation.
//!
//! [`MetricsSink`] implements the obs [`Sink`] trait, so the event stream
//! every subsystem already emits (spans, counters, WAL appends,
//! checkpoints, recoveries) feeds the aggregates with **zero new
//! instrumentation points**. A [`MetricsHub`] bundles a registry with the
//! slow-query configuration (threshold + JSON-lines log) and is shared —
//! one `Arc` — by every clone and epoch snapshot of a knowledge base.
//!
//! Hot-path discipline: updates through a held [`Counter`]/[`Gauge`]/
//! [`Histogram`] handle are lock-free. Updates by *name*
//! ([`MetricsRegistry::counter_add`] etc., the [`MetricsSink`] path) take
//! one uncontended `RwLock` read on a read-mostly map — registration is
//! the only writer and happens once per name. A knowledge base without a
//! hub attached pays nothing at all (the `Option` is `None` and the obs
//! sink stays disabled).

use crate::obs::{Event, Sink};
use std::collections::BTreeMap;
use std::io::Write;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Number of shards in a [`Counter`]. Eight covers the worker counts the
/// determinism contract is tested at (1/2/4/8) without bloating the
/// snapshot sum.
const SHARDS: usize = 8;

/// One cache line per shard so two threads bumping the same counter
/// never false-share.
#[repr(align(64))]
#[derive(Debug, Default)]
struct Shard(AtomicU64);

/// The per-thread shard index: threads are assigned round-robin on first
/// touch, so a fixed pool spreads evenly and a single thread always hits
/// the same cache line.
fn shard_index() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SHARD: usize = NEXT.fetch_add(1, Ordering::Relaxed) % SHARDS;
    }
    SHARD.with(|s| *s)
}

/// A monotone counter sharded across padded atomics. `add` is one relaxed
/// `fetch_add` on the calling thread's shard; `get` sums the shards.
#[derive(Debug, Default)]
pub struct Counter {
    shards: [Shard; SHARDS],
}

impl Counter {
    /// A fresh zero counter.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds `n` to the calling thread's shard (relaxed).
    #[inline]
    pub fn add(&self, n: u64) {
        self.shards[shard_index()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current total (sum over shards, relaxed).
    pub fn get(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

/// A point-in-time value: one relaxed atomic, last set wins.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A fresh zero gauge.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Sets the value (relaxed).
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// The current value (relaxed).
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Sub-bucket resolution of the histogram: 2³ = 8 linear sub-buckets per
/// power-of-two octave, bounding the relative bucket error at 1/8.
const SUB_BITS: u32 = 3;
/// Sub-buckets per octave.
const SUB_BUCKETS: u64 = 1 << SUB_BITS;
/// Values below this get exact single-value buckets.
const LINEAR_MAX: u64 = 2 * SUB_BUCKETS;
/// Total bucket count: index of `u64::MAX` plus one.
const BUCKETS: usize = ((63 - SUB_BITS as u64) * SUB_BUCKETS + SUB_BUCKETS * 2 - 1) as usize + 1;

/// The bucket index for a value: exact below [`LINEAR_MAX`], then
/// log-linear — the octave (position of the most significant bit) picks a
/// group of [`SUB_BUCKETS`] buckets and the next [`SUB_BITS`] bits pick
/// within the group.
fn bucket_index(v: u64) -> usize {
    if v < LINEAR_MAX {
        v as usize
    } else {
        let e = 63 - u64::from(v.leading_zeros());
        ((e - u64::from(SUB_BITS)) * SUB_BUCKETS + (v >> (e - u64::from(SUB_BITS)))) as usize
    }
}

/// The largest value that lands in bucket `i` (inverse of
/// [`bucket_index`]; used to report quantiles).
fn bucket_bound(i: usize) -> u64 {
    let i = i as u64;
    if i < LINEAR_MAX {
        i
    } else {
        let group = i / SUB_BUCKETS; // ≥ 2 past the linear region
        let sub = i % SUB_BUCKETS;
        let width = 1u64 << (group - 1);
        ((SUB_BUCKETS + sub) << (group - 1)) + width - 1
    }
}

/// A log-linear histogram: fixed bucket layout (no allocation after
/// construction), relaxed atomic updates, quantiles computed at snapshot
/// time by a cumulative walk. The true maximum is tracked exactly with
/// `fetch_max`, and reported quantiles are clamped to it.
#[derive(Debug)]
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// A fresh empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one observation: three relaxed RMWs, no lock.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// A consistent-enough point-in-time summary (concurrent recording
    /// may be partially visible; counts are never lost).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count: u64 = counts.iter().sum();
        let max = self.max.load(Ordering::Relaxed);
        let quantile = |q: f64| -> u64 {
            if count == 0 {
                return 0;
            }
            // Rank of the q-quantile, 1-based, at least 1.
            let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
            let mut seen = 0u64;
            for (i, c) in counts.iter().enumerate() {
                seen += c;
                if seen >= rank {
                    return bucket_bound(i).min(max);
                }
            }
            max
        };
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            max,
            p50: quantile(0.50),
            p90: quantile(0.90),
            p99: quantile(0.99),
        }
    }
}

/// A point-in-time summary of a [`Histogram`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// The exact maximum observed value.
    pub max: u64,
    /// Median estimate (upper bound of the median's bucket, ≤ `max`).
    pub p50: u64,
    /// 90th-percentile estimate.
    pub p90: u64,
    /// 99th-percentile estimate.
    pub p99: u64,
}

impl HistogramSnapshot {
    /// Mean of the observed values (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }
}

fn read_guard<T>(lock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    match lock.read() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

fn write_guard<T>(lock: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    match lock.write() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

/// A named collection of counters, gauges and histograms. Registration
/// (first use of a name) takes a write lock; every later update by name
/// takes one uncontended read lock, and updates through a held handle
/// ([`MetricsRegistry::counter`] returns `Arc<Counter>` etc.) touch no
/// lock at all. Names are `&'static str` from the fixed taxonomy
/// (DESIGN.md §17), so the maps never allocate keys.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: RwLock<BTreeMap<&'static str, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<&'static str, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<&'static str, Arc<Histogram>>>,
}

impl MetricsRegistry {
    /// A fresh empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// The counter registered under `name`, creating it if absent. Hold
    /// the returned handle to update without any lock.
    pub fn counter(&self, name: &'static str) -> Arc<Counter> {
        if let Some(c) = read_guard(&self.counters).get(name) {
            return Arc::clone(c);
        }
        Arc::clone(write_guard(&self.counters).entry(name).or_default())
    }

    /// Adds `v` to the counter `name` (one read-lock lookup on the fast
    /// path).
    pub fn counter_add(&self, name: &'static str, v: u64) {
        if let Some(c) = read_guard(&self.counters).get(name) {
            c.add(v);
            return;
        }
        self.counter(name).add(v);
    }

    /// The gauge registered under `name`, creating it if absent.
    pub fn gauge(&self, name: &'static str) -> Arc<Gauge> {
        if let Some(g) = read_guard(&self.gauges).get(name) {
            return Arc::clone(g);
        }
        Arc::clone(write_guard(&self.gauges).entry(name).or_default())
    }

    /// Sets the gauge `name` to `v`.
    pub fn gauge_set(&self, name: &'static str, v: u64) {
        if let Some(g) = read_guard(&self.gauges).get(name) {
            g.set(v);
            return;
        }
        self.gauge(name).set(v);
    }

    /// The histogram registered under `name`, creating it if absent.
    pub fn histogram(&self, name: &'static str) -> Arc<Histogram> {
        if let Some(h) = read_guard(&self.histograms).get(name) {
            return Arc::clone(h);
        }
        Arc::clone(write_guard(&self.histograms).entry(name).or_default())
    }

    /// Records `v` into the histogram `name`.
    pub fn histogram_record(&self, name: &'static str, v: u64) {
        if let Some(h) = read_guard(&self.histograms).get(name) {
            h.record(v);
            return;
        }
        self.histogram(name).record(v);
    }

    /// A point-in-time snapshot of every registered metric, names sorted
    /// (the `BTreeMap` order), so two snapshots of the same state render
    /// identically.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: read_guard(&self.counters)
                .iter()
                .map(|(n, c)| ((*n).to_string(), c.get()))
                .collect(),
            gauges: read_guard(&self.gauges)
                .iter()
                .map(|(n, g)| ((*n).to_string(), g.get()))
                .collect(),
            histograms: read_guard(&self.histograms)
                .iter()
                .map(|(n, h)| ((*n).to_string(), h.snapshot()))
                .collect(),
        }
    }
}

/// A typed snapshot of a [`MetricsRegistry`]: every metric name-sorted,
/// renderable as deterministic Prometheus text exposition or JSON.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Counter totals, name-sorted.
    pub counters: Vec<(String, u64)>,
    /// Gauge values, name-sorted.
    pub gauges: Vec<(String, u64)>,
    /// Histogram summaries, name-sorted.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

/// Prometheus metric names allow `[a-zA-Z0-9_:]`; everything else maps
/// to `_`.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

impl MetricsSnapshot {
    /// The counter's total, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// The gauge's value, if registered.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// The histogram's summary, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Deterministic Prometheus text exposition: counters as
    /// `qdk_<name>_total`, gauges as `qdk_<name>`, histograms as
    /// summaries with `quantile` labels plus an exact `_max` gauge.
    /// Metrics appear in name order within each kind; the format is
    /// pinned by a golden test.
    pub fn render_prometheus(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for (name, v) in &self.counters {
            let n = sanitize(name);
            let _ = writeln!(out, "# TYPE qdk_{n}_total counter");
            let _ = writeln!(out, "qdk_{n}_total {v}");
        }
        for (name, v) in &self.gauges {
            let n = sanitize(name);
            let _ = writeln!(out, "# TYPE qdk_{n} gauge");
            let _ = writeln!(out, "qdk_{n} {v}");
        }
        for (name, h) in &self.histograms {
            let n = sanitize(name);
            let _ = writeln!(out, "# TYPE qdk_{n} summary");
            let _ = writeln!(out, "qdk_{n}{{quantile=\"0.5\"}} {}", h.p50);
            let _ = writeln!(out, "qdk_{n}{{quantile=\"0.9\"}} {}", h.p90);
            let _ = writeln!(out, "qdk_{n}{{quantile=\"0.99\"}} {}", h.p99);
            let _ = writeln!(out, "qdk_{n}_sum {}", h.sum);
            let _ = writeln!(out, "qdk_{n}_count {}", h.count);
            let _ = writeln!(out, "# TYPE qdk_{n}_max gauge");
            let _ = writeln!(out, "qdk_{n}_max {}", h.max);
        }
        out
    }

    /// One deterministic JSON object: `{"counters":{...},"gauges":{...},
    /// "histograms":{name:{count,sum,max,p50,p90,p99}}}`, keys in name
    /// order.
    pub fn render_json(&self) -> String {
        use std::fmt::Write;
        let mut out = String::from("{\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            let comma = if i == 0 { "" } else { "," };
            let _ = write!(out, "{comma}\"{}\":{v}", json_escape(name));
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            let comma = if i == 0 { "" } else { "," };
            let _ = write!(out, "{comma}\"{}\":{v}", json_escape(name));
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            let comma = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{comma}\"{}\":{{\"count\":{},\"sum\":{},\"max\":{},\"p50\":{},\"p90\":{},\"p99\":{}}}",
                json_escape(name),
                h.count,
                h.sum,
                h.max,
                h.p50,
                h.p90,
                h.p99
            );
        }
        out.push_str("}}");
        out
    }
}

/// Escapes a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// One registry plus the slow-query configuration, shared (one `Arc`) by
/// every clone and epoch snapshot of a knowledge base. The threshold is a
/// relaxed atomic so the per-query check costs one load; the log writer
/// sits behind a mutex touched only when a slow query is actually
/// captured.
#[derive(Default)]
pub struct MetricsHub {
    registry: MetricsRegistry,
    /// Queries slower than this (wall µs) get their full trace written to
    /// the slow log; `0` disables capture.
    slow_query_micros: AtomicU64,
    slow_log: Mutex<Option<Box<dyn Write + Send>>>,
    run_seq: AtomicU64,
}

impl std::fmt::Debug for MetricsHub {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsHub")
            .field("slow_query_micros", &self.slow_query_micros())
            .finish()
    }
}

impl MetricsHub {
    /// A fresh hub: empty registry, slow-query capture off.
    pub fn new() -> Self {
        MetricsHub::default()
    }

    /// The aggregate registry.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// The slow-query threshold in microseconds (`0` = capture off).
    #[inline]
    pub fn slow_query_micros(&self) -> u64 {
        self.slow_query_micros.load(Ordering::Relaxed)
    }

    /// Sets the slow-query threshold (`0` disables capture).
    pub fn set_slow_query_micros(&self, micros: u64) {
        self.slow_query_micros.store(micros, Ordering::Relaxed);
    }

    /// Installs the JSON-lines writer slow-query traces are rendered to.
    pub fn set_slow_log(&self, writer: impl Write + Send + 'static) {
        let mut g = match self.slow_log.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        *g = Some(Box::new(writer));
    }

    /// The next query run id (1-based, process-local, monotone).
    pub fn next_run_id(&self) -> u64 {
        self.run_seq.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Writes one line to the slow-query log (appending a newline if
    /// missing). I/O errors are ignored — observability never fails the
    /// query it observes. A no-op when no writer is installed.
    pub fn write_slow_line(&self, line: &str) {
        let mut g = match self.slow_log.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        if let Some(w) = g.as_mut() {
            let _ = w.write_all(line.as_bytes());
            if !line.ends_with('\n') {
                let _ = w.write_all(b"\n");
            }
            let _ = w.flush();
        }
    }
}

/// Maps a span name to the histogram aggregating its durations. Only
/// coarse, once-per-query spans are aggregated; per-stratum and
/// per-iteration spans stay trace-only (they would dominate the sink's
/// cost and their counts carry no cross-query meaning).
fn span_metric(name: &str) -> Option<&'static str> {
    Some(match name {
        "parse" => "parse_span_micros",
        "plan" => "plan_span_micros",
        "execute" => "execute_span_micros",
        "seminaive" => "seminaive_span_micros",
        "naive" => "naive_span_micros",
        "magic" => "magic_span_micros",
        "topdown" => "topdown_span_micros",
        "transform" => "transform_span_micros",
        "enumerate" => "enumerate_span_micros",
        "assemble" => "assemble_span_micros",
        "reduce" => "reduce_span_micros",
        "maintain_insert" => "maintain_insert_span_micros",
        "maintain_retract" => "maintain_retract_span_micros",
        "maintain_rules" => "maintain_rules_span_micros",
        _ => return None,
    })
}

/// A [`Sink`] that folds the obs event stream into a [`MetricsHub`]'s
/// registry: counters accumulate, coarse span durations feed histograms,
/// durability events feed their counters. Install it (alone or fanned out
/// with another sink) and every existing emission point becomes an
/// aggregate.
pub struct MetricsSink {
    hub: Arc<MetricsHub>,
}

impl MetricsSink {
    /// A sink aggregating into `hub`.
    pub fn new(hub: Arc<MetricsHub>) -> Self {
        MetricsSink { hub }
    }
}

impl std::fmt::Debug for MetricsSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsSink").finish()
    }
}

impl Sink for MetricsSink {
    fn emit(&self, event: Event) {
        let reg = self.hub.registry();
        match event {
            Event::SpanStart { .. } => {}
            Event::SpanEnd { name, micros, .. } => {
                if let Some(metric) = span_metric(name) {
                    reg.histogram_record(metric, micros);
                }
            }
            Event::Counter { name, value } => reg.counter_add(name, value),
            Event::WalAppend { bytes, .. } => {
                reg.counter_add("wal_appends", 1);
                reg.counter_add("wal_bytes", bytes);
            }
            Event::Checkpoint { bytes, .. } => {
                reg.counter_add("checkpoints", 1);
                reg.counter_add("checkpoint_bytes", bytes);
            }
            Event::Recovery {
                replayed,
                discarded_bytes,
            } => {
                reg.counter_add("recoveries", 1);
                reg.counter_add("recovery_replayed", replayed);
                reg.counter_add("recovery_discarded_bytes", discarded_bytes);
            }
        }
    }
}

/// The process-wide hub backing `QDK_TRACE=metrics` (see
/// [`crate::obs::sink_from_spec`]): every knowledge base created under
/// that spec aggregates into this one registry, so a whole test suite or
/// process can be profiled without touching any call site.
pub fn global_hub() -> &'static Arc<MetricsHub> {
    static HUB: OnceLock<Arc<MetricsHub>> = OnceLock::new();
    HUB.get_or_init(|| Arc::new(MetricsHub::new()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_exact_below_linear_max() {
        for v in 0..LINEAR_MAX {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_bound(v as usize), v);
        }
    }

    #[test]
    fn bucket_bounds_invert_bucket_index() {
        // The upper bound of every bucket indexes back into it, and the
        // next value up indexes into the next bucket.
        for i in 0..BUCKETS - 1 {
            let hi = bucket_bound(i);
            assert_eq!(bucket_index(hi), i, "upper bound of bucket {i}");
            assert_eq!(bucket_index(hi + 1), i + 1, "first value past bucket {i}");
        }
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn bucket_relative_error_is_bounded() {
        // Past the linear region the bucket width is at most 1/8 of the
        // bucket's lower bound.
        for v in [100u64, 1_000, 12_345, 1_000_000, u32::MAX as u64] {
            let i = bucket_index(v);
            let hi = bucket_bound(i);
            let lo = if i == 0 { 0 } else { bucket_bound(i - 1) + 1 };
            assert!((lo..=hi).contains(&v));
            assert!(
                (hi - lo) as f64 <= lo as f64 / 8.0 + 1.0,
                "bucket [{lo}, {hi}] too wide for {v}"
            );
        }
    }

    #[test]
    fn histogram_quantiles_on_known_uniform_distribution() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.sum, 500_500);
        assert_eq!(s.max, 1000);
        // ±1 bucket: the true quantile's bucket bound, or the next one.
        let within = |est: u64, truth: u64| {
            let i = bucket_index(truth);
            let lo = if i == 0 { 0 } else { bucket_bound(i - 1) + 1 };
            let hi = bucket_bound((i + 1).min(BUCKETS - 1));
            assert!(
                (lo..=hi).contains(&est),
                "estimate {est} for true {truth} outside [{lo}, {hi}]"
            );
        };
        within(s.p50, 500);
        within(s.p90, 900);
        within(s.p99, 990);
    }

    #[test]
    fn histogram_quantiles_on_point_mass() {
        let h = Histogram::new();
        for _ in 0..100 {
            h.record(42);
        }
        let s = h.snapshot();
        // All mass in one bucket: every quantile reports that bucket,
        // clamped to the exact max.
        assert_eq!(s.p50, 42);
        assert_eq!(s.p90, 42);
        assert_eq!(s.p99, 42);
        assert_eq!(s.max, 42);
        assert_eq!(s.mean(), 42);
    }

    #[test]
    fn histogram_quantiles_clamp_to_exact_max() {
        let h = Histogram::new();
        h.record(1_000_003); // lands in a wide bucket
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        // The bucket bound exceeds the value; the exact max wins.
        assert_eq!(s.p50, 1_000_003);
        assert_eq!(s.p99, 1_000_003);
    }

    #[test]
    fn empty_histogram_snapshots_to_zeros() {
        let s = Histogram::new().snapshot();
        assert_eq!(s, HistogramSnapshot::default());
        assert_eq!(s.mean(), 0);
    }

    #[test]
    fn counter_sums_across_threads() {
        let c = Arc::new(Counter::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    c.inc();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 4000);
    }

    #[test]
    fn registry_handles_alias_by_name() {
        let reg = MetricsRegistry::new();
        reg.counter("hits").add(2);
        reg.counter_add("hits", 3);
        assert_eq!(reg.counter("hits").get(), 5);
        reg.gauge_set("depth", 7);
        reg.gauge_set("depth", 4);
        assert_eq!(reg.gauge("depth").get(), 4);
        reg.histogram_record("lat", 10);
        reg.histogram("lat").record(20);
        assert_eq!(reg.histogram("lat").snapshot().count, 2);
    }

    #[test]
    fn snapshot_is_name_sorted_and_queryable() {
        let reg = MetricsRegistry::new();
        reg.counter_add("zeta", 1);
        reg.counter_add("alpha", 2);
        reg.gauge_set("mid", 3);
        let s = reg.snapshot();
        let names: Vec<&str> = s.counters.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
        assert_eq!(s.counter("alpha"), Some(2));
        assert_eq!(s.counter("missing"), None);
        assert_eq!(s.gauge("mid"), Some(3));
        assert!(s.histogram("none").is_none());
    }

    #[test]
    fn metrics_sink_folds_the_event_stream() {
        let hub = Arc::new(MetricsHub::new());
        let sink = MetricsSink::new(Arc::clone(&hub));
        sink.emit(Event::Counter {
            name: "rule_firings",
            value: 5,
        });
        sink.emit(Event::SpanEnd {
            name: "execute",
            arg: 0,
            micros: 120,
        });
        sink.emit(Event::SpanStart {
            name: "stratum",
            arg: 0,
        });
        sink.emit(Event::SpanEnd {
            name: "stratum",
            arg: 0,
            micros: 50,
        }); // fine-grained: not aggregated
        sink.emit(Event::WalAppend { lsn: 1, bytes: 64 });
        sink.emit(Event::Checkpoint { lsn: 1, bytes: 256 });
        sink.emit(Event::Recovery {
            replayed: 3,
            discarded_bytes: 8,
        });
        let s = hub.registry().snapshot();
        assert_eq!(s.counter("rule_firings"), Some(5));
        assert_eq!(s.counter("wal_appends"), Some(1));
        assert_eq!(s.counter("wal_bytes"), Some(64));
        assert_eq!(s.counter("checkpoints"), Some(1));
        assert_eq!(s.counter("recovery_replayed"), Some(3));
        assert_eq!(s.histogram("execute_span_micros").unwrap().count, 1);
        assert!(s.histogram("stratum_span_micros").is_none());
    }

    #[test]
    fn hub_slow_query_config_round_trips() {
        let hub = MetricsHub::new();
        assert_eq!(hub.slow_query_micros(), 0);
        hub.set_slow_query_micros(2500);
        assert_eq!(hub.slow_query_micros(), 2500);
        assert_eq!(hub.next_run_id(), 1);
        assert_eq!(hub.next_run_id(), 2);
        // No writer installed: writing is a silent no-op.
        hub.write_slow_line("{\"run_id\":1}");
    }

    #[test]
    fn json_escaping_covers_quotes_and_control_chars() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("x\ny"), "x\\ny");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn render_json_is_well_formed() {
        let reg = MetricsRegistry::new();
        reg.counter_add("c", 1);
        reg.gauge_set("g", 2);
        reg.histogram_record("h", 3);
        let json = reg.snapshot().render_json();
        assert_eq!(
            json,
            "{\"counters\":{\"c\":1},\"gauges\":{\"g\":2},\"histograms\":{\"h\":{\"count\":1,\"sum\":3,\"max\":3,\"p50\":3,\"p90\":3,\"p99\":3}}}"
        );
    }
}
