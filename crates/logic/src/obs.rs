//! Structured observability events: the dependency-free layer every crate
//! in the workspace reports through.
//!
//! The design goal is *zero cost when disabled*: the hot paths hold an
//! [`ObsSink`] handle whose `enabled` flag is a plain `bool` captured at
//! construction, so a disabled sink costs one predictable branch and no
//! virtual call, no clock read, and no allocation (the `BENCH_obs.json`
//! artifact guards this — see DESIGN.md §12). When enabled, events flow to
//! a pluggable [`Sink`]:
//!
//! * [`NullSink`] — accepts and discards everything (useful to measure the
//!   cost of the *enabled* plumbing itself);
//! * [`CollectSink`] — buffers events in memory, capped, for tests and
//!   [`QueryTrace`](https://docs.rs) assembly by the session layer;
//! * [`JsonLinesSink`] — writes one JSON object per event to any
//!   `io::Write`, for offline analysis.
//!
//! Events are spans (start/end pairs with elapsed microseconds) and
//! counters. Spans are only emitted from coordinator code — worker threads
//! accumulate into shared atomics that the coordinator publishes as
//! counters — so the event stream is deterministic in structure at every
//! worker count and spans always nest properly ([`check_nesting`]).

use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// One observability event.
///
/// `name` is a `&'static str` from the fixed taxonomy in DESIGN.md §12
/// (e.g. `"seminaive"`, `"stratum"`, `"delta_facts"`); `arg` carries the
/// span's discriminator (stratum index, iteration number, …) and is `0`
/// when unused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Event {
    /// A span (timed region) opened.
    SpanStart {
        /// Span name from the taxonomy.
        name: &'static str,
        /// Discriminator (stratum index, iteration, …); 0 when unused.
        arg: u64,
    },
    /// The matching span closed.
    SpanEnd {
        /// Span name — matches the corresponding [`Event::SpanStart`].
        name: &'static str,
        /// Discriminator — matches the corresponding start.
        arg: u64,
        /// Wall-clock duration of the span in microseconds.
        micros: u64,
    },
    /// A named quantity observed at a point in time.
    Counter {
        /// Counter name from the taxonomy.
        name: &'static str,
        /// Observed value (a delta or a total; see the taxonomy).
        value: u64,
    },
    /// One record appended to the write-ahead log (durability layer).
    WalAppend {
        /// The record's log sequence number.
        lsn: u64,
        /// Bytes appended (frame + payload).
        bytes: u64,
    },
    /// A checkpoint snapshot published and the WAL truncated.
    Checkpoint {
        /// The last LSN the snapshot covers.
        lsn: u64,
        /// Bytes the snapshot occupies on disk.
        bytes: u64,
    },
    /// A durable store was opened and its state recovered.
    Recovery {
        /// Ops restored (checkpointed + WAL-replayed).
        replayed: u64,
        /// Torn/corrupt tail bytes discarded from the WAL.
        discarded_bytes: u64,
    },
}

impl Event {
    /// The event's name, whatever its kind.
    pub fn name(&self) -> &'static str {
        match self {
            Event::SpanStart { name, .. }
            | Event::SpanEnd { name, .. }
            | Event::Counter { name, .. } => name,
            Event::WalAppend { .. } => "wal_append",
            Event::Checkpoint { .. } => "checkpoint",
            Event::Recovery { .. } => "recovery",
        }
    }
}

/// Receiver of [`Event`]s. Implementations must be cheap and non-blocking
/// in spirit: they run inline on the evaluating thread.
pub trait Sink: Send + Sync {
    /// Deliver one event.
    fn emit(&self, event: Event);
}

/// A sink that discards every event. Installing it keeps the *enabled*
/// emission path live (spans read the clock, counters are computed) while
/// writing nothing — the configuration the ≤2% overhead budget is
/// measured against.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl Sink for NullSink {
    fn emit(&self, _event: Event) {}
}

/// Default capacity of a [`CollectSink`] (events), chosen to hold any
/// realistic single query's trace while bounding a process-global sink.
pub const COLLECT_CAP: usize = 65_536;

/// A sink that buffers events in memory, up to a cap; events beyond the
/// cap are counted in [`CollectSink::dropped`] instead of stored.
#[derive(Debug, Default)]
pub struct CollectSink {
    events: Mutex<Vec<Event>>,
    cap: usize,
    dropped: AtomicU64,
}

impl CollectSink {
    /// New sink with the default cap ([`COLLECT_CAP`]).
    pub fn new() -> Self {
        Self::with_capacity(COLLECT_CAP)
    }

    /// New sink storing at most `cap` events.
    pub fn with_capacity(cap: usize) -> Self {
        CollectSink {
            events: Mutex::new(Vec::new()),
            cap,
            dropped: AtomicU64::new(0),
        }
    }

    /// Snapshot of the buffered events.
    pub fn events(&self) -> Vec<Event> {
        match self.events.lock() {
            Ok(g) => g.clone(),
            Err(p) => p.into_inner().clone(),
        }
    }

    /// Drain the buffered events, leaving the sink empty.
    pub fn take(&self) -> Vec<Event> {
        match self.events.lock() {
            Ok(mut g) => std::mem::take(&mut *g),
            Err(p) => std::mem::take(&mut *p.into_inner()),
        }
    }

    /// How many events were discarded because the cap was reached.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

impl Sink for CollectSink {
    fn emit(&self, event: Event) {
        let mut g = match self.events.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        if g.len() < self.cap {
            g.push(event);
        } else {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// A sink that delivers every event to each of several sinks, in order.
/// This is how a per-request trace collector and a long-running
/// [`crate::metrics::MetricsSink`] observe the *same* event stream: fan
/// the handle out instead of choosing one.
pub struct FanoutSink {
    sinks: Vec<Arc<dyn Sink>>,
}

impl FanoutSink {
    /// A sink broadcasting to `sinks` in the given order.
    pub fn new(sinks: Vec<Arc<dyn Sink>>) -> Self {
        FanoutSink { sinks }
    }
}

impl std::fmt::Debug for FanoutSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "FanoutSink({} sinks)", self.sinks.len())
    }
}

impl Sink for FanoutSink {
    fn emit(&self, event: Event) {
        for s in &self.sinks {
            s.emit(event);
        }
    }
}

/// A sink that writes one JSON object per event to a writer (JSON lines).
/// I/O errors are silently ignored — observability must never fail the
/// query it observes.
#[derive(Debug)]
pub struct JsonLinesSink<W: Write + Send> {
    writer: Mutex<W>,
}

impl<W: Write + Send> JsonLinesSink<W> {
    /// Wrap a writer.
    pub fn new(writer: W) -> Self {
        JsonLinesSink {
            writer: Mutex::new(writer),
        }
    }
}

impl<W: Write + Send> Sink for JsonLinesSink<W> {
    fn emit(&self, event: Event) {
        let line = match event {
            Event::SpanStart { name, arg } => {
                format!("{{\"ev\":\"span_start\",\"name\":\"{name}\",\"arg\":{arg}}}\n")
            }
            Event::SpanEnd { name, arg, micros } => format!(
                "{{\"ev\":\"span_end\",\"name\":\"{name}\",\"arg\":{arg},\"micros\":{micros}}}\n"
            ),
            Event::Counter { name, value } => {
                format!("{{\"ev\":\"counter\",\"name\":\"{name}\",\"value\":{value}}}\n")
            }
            Event::WalAppend { lsn, bytes } => {
                format!("{{\"ev\":\"wal_append\",\"lsn\":{lsn},\"bytes\":{bytes}}}\n")
            }
            Event::Checkpoint { lsn, bytes } => {
                format!("{{\"ev\":\"checkpoint\",\"lsn\":{lsn},\"bytes\":{bytes}}}\n")
            }
            Event::Recovery {
                replayed,
                discarded_bytes,
            } => format!(
                "{{\"ev\":\"recovery\",\"replayed\":{replayed},\"discarded_bytes\":{discarded_bytes}}}\n"
            ),
        };
        let mut w = match self.writer.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        let _ = w.write_all(line.as_bytes());
    }
}

/// The handle evaluation code holds: either disabled (the default — one
/// branch on a plain `bool`, nothing else) or a shared pointer to a
/// [`Sink`].
///
/// Cloning is cheap (an `Option<Arc>` and a `bool`), so the handle is
/// copied freely into `EvalOptions` / `DescribeOptions`.
#[derive(Clone, Default)]
pub struct ObsSink {
    sink: Option<Arc<dyn Sink>>,
    enabled: bool,
}

impl std::fmt::Debug for ObsSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObsSink")
            .field("enabled", &self.enabled)
            .finish()
    }
}

impl ObsSink {
    /// The disabled handle (emits nothing, costs one branch).
    pub fn disabled() -> Self {
        ObsSink::default()
    }

    /// An enabled handle delivering to `sink`.
    pub fn new(sink: Arc<dyn Sink>) -> Self {
        ObsSink {
            sink: Some(sink),
            enabled: true,
        }
    }

    /// Whether events are being recorded. Hot paths may use this to skip
    /// computing counter values entirely.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// The underlying sink, if enabled — for composing with a
    /// [`FanoutSink`] (e.g. adding a trace collector without detaching
    /// the metrics aggregator).
    pub fn handle(&self) -> Option<Arc<dyn Sink>> {
        self.sink.clone()
    }

    /// Deliver one event (no-op when disabled).
    #[inline]
    pub fn emit(&self, event: Event) {
        if let Some(sink) = &self.sink {
            sink.emit(event);
        }
    }

    /// Record a counter observation (no-op when disabled).
    #[inline]
    pub fn counter(&self, name: &'static str, value: u64) {
        if self.enabled {
            self.emit(Event::Counter { name, value });
        }
    }

    /// Open a timed span; the returned guard emits the matching
    /// [`Event::SpanEnd`] when dropped. When disabled the guard is inert:
    /// no clock is read and nothing is emitted.
    #[inline]
    pub fn span(&self, name: &'static str, arg: u64) -> SpanGuard {
        if !self.enabled {
            return SpanGuard { inner: None };
        }
        self.emit(Event::SpanStart { name, arg });
        SpanGuard {
            inner: Some((self.clone(), name, arg, Instant::now())),
        }
    }
}

/// RAII guard for a span opened with [`ObsSink::span`]; emits the
/// [`Event::SpanEnd`] (with elapsed microseconds) on drop.
#[derive(Debug)]
pub struct SpanGuard {
    inner: Option<(ObsSink, &'static str, u64, Instant)>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((sink, name, arg, start)) = self.inner.take() {
            let micros = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
            sink.emit(Event::SpanEnd { name, arg, micros });
        }
    }
}

/// Build a sink from a `QDK_TRACE`-style spec string. Recognised values:
///
/// * `""`, `"0"`, `"off"`, `"null"`, `"none"` — disabled;
/// * `"collect"` — a capped in-memory [`CollectSink`];
/// * `"metrics"` — a [`crate::metrics::MetricsSink`] aggregating into the
///   process-wide registry ([`crate::metrics::global_hub`]), so a whole
///   test suite or process runs with aggregation on;
/// * anything ending in `".jsonl"` — a [`JsonLinesSink`] appending to that
///   file (disabled if the file cannot be opened).
pub fn sink_from_spec(spec: &str) -> ObsSink {
    match spec.trim() {
        "" | "0" | "off" | "null" | "none" => ObsSink::disabled(),
        "collect" => ObsSink::new(Arc::new(CollectSink::new())),
        "metrics" => ObsSink::new(Arc::new(crate::metrics::MetricsSink::new(Arc::clone(
            crate::metrics::global_hub(),
        )))),
        path if path.ends_with(".jsonl") => {
            match std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
            {
                Ok(f) => ObsSink::new(Arc::new(JsonLinesSink::new(f))),
                Err(_) => ObsSink::disabled(),
            }
        }
        _ => ObsSink::disabled(),
    }
}

/// The process-wide default sink, configured once from the `QDK_TRACE`
/// environment variable (see [`sink_from_spec`]). `KnowledgeBase::new`
/// starts from this, so setting `QDK_TRACE=collect` exercises every
/// emission path across a whole test suite.
pub fn env_sink() -> ObsSink {
    static SINK: OnceLock<ObsSink> = OnceLock::new();
    SINK.get_or_init(|| match std::env::var("QDK_TRACE") {
        Ok(spec) => sink_from_spec(&spec),
        Err(_) => ObsSink::disabled(),
    })
    .clone()
}

/// Validate that span start/end events in `events` nest LIFO (every end
/// matches the most recent unclosed start, and nothing is left open).
/// Returns a description of the first violation, if any.
pub fn check_nesting(events: &[Event]) -> Result<(), String> {
    let mut stack: Vec<(&'static str, u64)> = Vec::new();
    for ev in events {
        match ev {
            Event::SpanStart { name, arg } => stack.push((name, *arg)),
            Event::SpanEnd { name, arg, .. } => match stack.pop() {
                Some((open_name, open_arg)) if open_name == *name && open_arg == *arg => {}
                Some((open_name, open_arg)) => {
                    return Err(format!(
                        "span end {name}({arg}) closes open span {open_name}({open_arg})"
                    ))
                }
                None => return Err(format!("span end {name}({arg}) with no open span")),
            },
            // Counters and durability events carry no nesting structure.
            _ => {}
        }
    }
    if let Some((name, arg)) = stack.pop() {
        return Err(format!("span {name}({arg}) never closed"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_emits_nothing() {
        let obs = ObsSink::disabled();
        assert!(!obs.enabled());
        obs.counter("x", 1);
        let _g = obs.span("s", 0);
        // Nothing to observe: the point is that none of the above panics
        // or allocates a sink.
    }

    #[test]
    fn collect_sink_records_spans_and_counters() {
        let collect = Arc::new(CollectSink::new());
        let obs = ObsSink::new(collect.clone());
        assert!(obs.enabled());
        {
            let _outer = obs.span("outer", 1);
            obs.counter("ticks", 42);
            let _inner = obs.span("inner", 2);
        }
        let events = collect.events();
        assert_eq!(events.len(), 5);
        assert_eq!(
            events[0],
            Event::SpanStart {
                name: "outer",
                arg: 1
            }
        );
        assert_eq!(
            events[1],
            Event::Counter {
                name: "ticks",
                value: 42
            }
        );
        assert_eq!(
            events[2],
            Event::SpanStart {
                name: "inner",
                arg: 2
            }
        );
        assert!(matches!(
            events[3],
            Event::SpanEnd {
                name: "inner",
                arg: 2,
                ..
            }
        ));
        assert!(matches!(
            events[4],
            Event::SpanEnd {
                name: "outer",
                arg: 1,
                ..
            }
        ));
        check_nesting(&events).unwrap();
    }

    #[test]
    fn guards_drop_in_lifo_order_by_construction() {
        let collect = Arc::new(CollectSink::new());
        let obs = ObsSink::new(collect.clone());
        for i in 0..3 {
            let _s = obs.span("stratum", i);
            for k in 0..2 {
                let _it = obs.span("iteration", k);
                obs.counter("delta_facts", k);
            }
        }
        check_nesting(&collect.events()).unwrap();
    }

    #[test]
    fn collect_sink_caps_and_counts_drops() {
        let collect = CollectSink::with_capacity(2);
        for i in 0..5 {
            collect.emit(Event::Counter {
                name: "n",
                value: i,
            });
        }
        assert_eq!(collect.events().len(), 2);
        assert_eq!(collect.dropped(), 3);
    }

    #[test]
    fn take_drains_the_buffer() {
        let collect = CollectSink::new();
        collect.emit(Event::Counter {
            name: "n",
            value: 1,
        });
        assert_eq!(collect.take().len(), 1);
        assert!(collect.events().is_empty());
    }

    #[test]
    fn json_lines_sink_writes_one_object_per_line() {
        let sink = JsonLinesSink::new(Vec::new());
        sink.emit(Event::SpanStart {
            name: "execute",
            arg: 0,
        });
        sink.emit(Event::Counter {
            name: "delta_facts",
            value: 7,
        });
        sink.emit(Event::SpanEnd {
            name: "execute",
            arg: 0,
            micros: 12,
        });
        let buf = match sink.writer.lock() {
            Ok(g) => g.clone(),
            Err(p) => p.into_inner().clone(),
        };
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(
            lines[0],
            "{\"ev\":\"span_start\",\"name\":\"execute\",\"arg\":0}"
        );
        assert_eq!(
            lines[1],
            "{\"ev\":\"counter\",\"name\":\"delta_facts\",\"value\":7}"
        );
        assert_eq!(
            lines[2],
            "{\"ev\":\"span_end\",\"name\":\"execute\",\"arg\":0,\"micros\":12}"
        );
    }

    #[test]
    fn durability_events_render_and_do_not_disturb_nesting() {
        let sink = JsonLinesSink::new(Vec::new());
        sink.emit(Event::WalAppend { lsn: 3, bytes: 41 });
        sink.emit(Event::Checkpoint { lsn: 3, bytes: 512 });
        sink.emit(Event::Recovery {
            replayed: 7,
            discarded_bytes: 12,
        });
        let buf = match sink.writer.lock() {
            Ok(g) => g.clone(),
            Err(p) => p.into_inner().clone(),
        };
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "{\"ev\":\"wal_append\",\"lsn\":3,\"bytes\":41}");
        assert_eq!(lines[1], "{\"ev\":\"checkpoint\",\"lsn\":3,\"bytes\":512}");
        assert_eq!(
            lines[2],
            "{\"ev\":\"recovery\",\"replayed\":7,\"discarded_bytes\":12}"
        );
        // Names resolve and nesting validation ignores them.
        let events = [
            Event::SpanStart { name: "s", arg: 0 },
            Event::WalAppend { lsn: 1, bytes: 1 },
            Event::SpanEnd {
                name: "s",
                arg: 0,
                micros: 1,
            },
        ];
        assert_eq!(events[1].name(), "wal_append");
        check_nesting(&events).unwrap();
    }

    #[test]
    fn spec_parsing() {
        assert!(!sink_from_spec("").enabled());
        assert!(!sink_from_spec("off").enabled());
        assert!(!sink_from_spec("0").enabled());
        assert!(!sink_from_spec("none").enabled());
        assert!(!sink_from_spec("unrecognised").enabled());
        assert!(sink_from_spec("collect").enabled());
        assert!(sink_from_spec("metrics").enabled());
    }

    #[test]
    fn fanout_delivers_to_every_sink_in_order() {
        let a = Arc::new(CollectSink::new());
        let b = Arc::new(CollectSink::new());
        let obs = ObsSink::new(Arc::new(FanoutSink::new(vec![
            a.clone() as Arc<dyn Sink>,
            b.clone() as Arc<dyn Sink>,
        ])));
        obs.counter("n", 9);
        assert_eq!(a.events(), b.events());
        assert_eq!(a.events().len(), 1);
        // A plain handle exposes its sink for composing.
        assert!(obs.handle().is_some());
        assert!(ObsSink::disabled().handle().is_none());
    }

    #[test]
    fn nesting_violations_are_reported() {
        let bad = [
            Event::SpanStart { name: "a", arg: 0 },
            Event::SpanEnd {
                name: "b",
                arg: 0,
                micros: 1,
            },
        ];
        assert!(check_nesting(&bad).is_err());
        let unclosed = [Event::SpanStart { name: "a", arg: 0 }];
        assert!(check_nesting(&unclosed).is_err());
        let stray = [Event::SpanEnd {
            name: "a",
            arg: 0,
            micros: 1,
        }];
        assert!(check_nesting(&stray).is_err());
    }
}
