//! Text parser for the logic language.
//!
//! Grammar (datalog-style ASCII rendering of the paper's notation):
//!
//! ```text
//! program    := clause*
//! clause     := rule | constraint
//! rule       := atom ( ":-" body )? "."
//! constraint := ":-" body "."
//! body       := literal ( "," literal )*
//! literal    := "not" atom | atom
//! atom       := ident "(" term ("," term)* ")"
//!             | ident                       (zero-ary predicate)
//!             | "(" comparison ")" | comparison
//! comparison := term op term,  op ∈ { = != < <= > >= }
//! term       := VARIABLE | ident | NUMBER | STRING
//! ```
//!
//! Identifiers beginning with a capital letter are variables (the paper's
//! convention, §2.1); all other identifiers are symbolic constants or
//! predicate names. `_` is an anonymous variable (each occurrence fresh).
//! Comments run from `%` or `//` to end of line.

use crate::atom::Atom;
use crate::clause::{Constraint, Program, Rule};
use crate::error::{ParseError, Result};
use crate::term::{Const, Term, Var};
use crate::Literal;

#[derive(Clone, Debug, PartialEq)]
enum Tok {
    Ident(String),
    Variable(String),
    Int(i64),
    Num(f64),
    Str(String),
    LParen,
    RParen,
    Comma,
    Period,
    If, // ":-"
    Op(&'static str),
    Not,
    Star,
}

#[derive(Clone, Debug)]
struct Spanned {
    tok: Tok,
    line: usize,
    col: usize,
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn error(&self, msg: impl Into<String>) -> ParseError {
        ParseError::new(msg, self.line, self.col)
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'%') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => break,
            }
        }
    }

    fn tokenize(mut self) -> Result<Vec<Spanned>> {
        let mut out = Vec::new();
        loop {
            self.skip_trivia();
            let (line, col) = (self.line, self.col);
            let Some(c) = self.peek() else { break };
            let tok = match c {
                b'(' => {
                    self.bump();
                    Tok::LParen
                }
                b')' => {
                    self.bump();
                    Tok::RParen
                }
                b',' => {
                    self.bump();
                    Tok::Comma
                }
                b'*' => {
                    self.bump();
                    Tok::Star
                }
                b'.' => {
                    self.bump();
                    Tok::Period
                }
                b':' => {
                    self.bump();
                    if self.peek() == Some(b'-') {
                        self.bump();
                        Tok::If
                    } else {
                        return Err(self.error("expected '-' after ':'"));
                    }
                }
                b'=' => {
                    self.bump();
                    Tok::Op("=")
                }
                b'!' => {
                    self.bump();
                    if self.peek() == Some(b'=') {
                        self.bump();
                        Tok::Op("!=")
                    } else {
                        return Err(self.error("expected '=' after '!'"));
                    }
                }
                b'<' => {
                    self.bump();
                    if self.peek() == Some(b'=') {
                        self.bump();
                        Tok::Op("<=")
                    } else {
                        Tok::Op("<")
                    }
                }
                b'>' => {
                    self.bump();
                    if self.peek() == Some(b'=') {
                        self.bump();
                        Tok::Op(">=")
                    } else {
                        Tok::Op(">")
                    }
                }
                b'"' => {
                    self.bump();
                    let mut s = String::new();
                    loop {
                        match self.bump() {
                            Some(b'"') => break,
                            Some(b'\\') => match self.bump() {
                                Some(b'n') => s.push('\n'),
                                Some(b't') => s.push('\t'),
                                Some(b'"') => s.push('"'),
                                Some(b'\\') => s.push('\\'),
                                _ => return Err(self.error("bad escape in string")),
                            },
                            Some(c) => s.push(c as char),
                            None => return Err(self.error("unterminated string")),
                        }
                    }
                    Tok::Str(s)
                }
                b'-' if self.peek2().is_some_and(|d| d.is_ascii_digit()) => {
                    self.bump();
                    self.number(true)?
                }
                c if c.is_ascii_digit() => self.number(false)?,
                c if c.is_ascii_alphabetic() || c == b'_' => {
                    let mut s = String::new();
                    while let Some(c) = self.peek() {
                        if c.is_ascii_alphanumeric() || c == b'_' {
                            s.push(c as char);
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    if s == "not" {
                        Tok::Not
                    } else if s.starts_with(|ch: char| ch.is_ascii_uppercase()) || s == "_" {
                        Tok::Variable(s)
                    } else if s.starts_with('_') {
                        return Err(ParseError::new(
                            format!("identifiers may not begin with '_': {s}"),
                            line,
                            col,
                        ));
                    } else {
                        Tok::Ident(s)
                    }
                }
                other => {
                    return Err(self.error(format!("unexpected character {:?}", other as char)))
                }
            };
            out.push(Spanned { tok, line, col });
        }
        Ok(out)
    }

    /// Lexes a number. A `.` is consumed as a decimal point only when
    /// followed by a digit, so the clause-terminating period after e.g.
    /// `4.0.` or `p(3).` lexes correctly.
    fn number(&mut self, negative: bool) -> Result<Tok> {
        let mut s = String::new();
        if negative {
            s.push('-');
        }
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() {
                s.push(c as char);
                self.bump();
            } else {
                break;
            }
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') && self.peek2().is_some_and(|d| d.is_ascii_digit()) {
            is_float = true;
            s.push('.');
            self.bump();
            while let Some(c) = self.peek() {
                if c.is_ascii_digit() {
                    s.push(c as char);
                    self.bump();
                } else {
                    break;
                }
            }
        }
        if is_float {
            s.parse::<f64>()
                .map(Tok::Num)
                .map_err(|e| self.error(format!("bad float {s}: {e}")))
        } else {
            s.parse::<i64>()
                .map(Tok::Int)
                .map_err(|e| self.error(format!("bad integer {s}: {e}")))
        }
    }
}

/// The parser proper.
pub struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
    anon: u64,
}

impl Parser {
    /// Creates a parser over the given source text.
    pub fn new(src: &str) -> Result<Self> {
        Ok(Parser {
            toks: Lexer::new(src).tokenize()?,
            pos: 0,
            anon: 0,
        })
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|s| &s.tok)
    }

    fn bump(&mut self) -> Option<Spanned> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn here(&self) -> (usize, usize) {
        self.toks
            .get(self.pos)
            .or_else(|| self.toks.last())
            .map(|s| (s.line, s.col))
            .unwrap_or((1, 1))
    }

    fn error(&self, msg: impl Into<String>) -> ParseError {
        let (l, c) = self.here();
        ParseError::new(msg, l, c)
    }

    fn expect(&mut self, want: &Tok, what: &str) -> Result<()> {
        match self.peek() {
            Some(t) if t == want => {
                self.bump();
                Ok(())
            }
            Some(t) => Err(self.error(format!("expected {what}, found {t:?}"))),
            None => Err(self.error(format!("expected {what}, found end of input"))),
        }
    }

    /// True if all tokens are consumed.
    pub fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    /// Consumes the next token if it is the identifier `kw`; returns
    /// whether it did. Used by statement-level parsers layered on top of
    /// this one (the query language's `where`, `and`, `necessary`, …).
    pub fn eat_keyword(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Ident(s)) if s == kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    /// True if the next token is the identifier `kw` (without consuming).
    pub fn peek_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Tok::Ident(s)) if s == kw)
    }

    /// Consumes a comma if next; returns whether it did.
    pub fn eat_comma(&mut self) -> bool {
        self.eat_tok(&Tok::Comma)
    }

    /// Consumes a `(` if next; returns whether it did.
    pub fn eat_lparen(&mut self) -> bool {
        self.eat_tok(&Tok::LParen)
    }

    /// Consumes a `)` if next; returns whether it did.
    pub fn eat_rparen(&mut self) -> bool {
        self.eat_tok(&Tok::RParen)
    }

    /// Consumes a `*` if next; returns whether it did.
    pub fn eat_star(&mut self) -> bool {
        self.eat_tok(&Tok::Star)
    }

    /// Consumes a `not` keyword if next; returns whether it did.
    pub fn eat_not(&mut self) -> bool {
        self.eat_tok(&Tok::Not)
    }

    /// Consumes a `:-` if next; returns whether it did.
    pub fn eat_if(&mut self) -> bool {
        self.eat_tok(&Tok::If)
    }

    /// Consumes the statement-terminating period.
    pub fn expect_period(&mut self) -> Result<()> {
        self.expect(&Tok::Period, "'.'")
    }

    /// Consumes an integer literal.
    pub fn integer(&mut self) -> Result<i64> {
        match self.bump().map(|s| s.tok) {
            Some(Tok::Int(i)) => Ok(i),
            other => Err(self.error(format!("expected integer, found {other:?}"))),
        }
    }

    /// Consumes an identifier and returns its text.
    pub fn identifier(&mut self) -> Result<String> {
        match self.bump().map(|s| s.tok) {
            Some(Tok::Ident(s)) => Ok(s),
            other => Err(self.error(format!("expected identifier, found {other:?}"))),
        }
    }

    /// Consumes a name usable as an attribute: identifier or variable.
    pub fn name(&mut self) -> Result<String> {
        match self.bump().map(|s| s.tok) {
            Some(Tok::Ident(s)) | Some(Tok::Variable(s)) => Ok(s),
            other => Err(self.error(format!("expected name, found {other:?}"))),
        }
    }

    /// Builds a parse error at the current position (for layered parsers).
    pub fn error_here(&self, msg: impl Into<String>) -> ParseError {
        self.error(msg)
    }

    fn eat_tok(&mut self, want: &Tok) -> bool {
        if self.peek() == Some(want) {
            self.bump();
            true
        } else {
            false
        }
    }

    /// Parses a term.
    pub fn term(&mut self) -> Result<Term> {
        match self.bump().map(|s| s.tok) {
            Some(Tok::Variable(v)) => {
                if v == "_" {
                    let name = format!("_anon{}", self.anon);
                    self.anon += 1;
                    Ok(Term::Var(Var::new(&name)))
                } else {
                    Ok(Term::var(&v))
                }
            }
            Some(Tok::Ident(s)) => Ok(Term::sym(&s)),
            Some(Tok::Int(i)) => Ok(Term::Const(Const::Int(i))),
            Some(Tok::Num(n)) => Ok(Term::Const(Const::Num(n))),
            Some(Tok::Str(s)) => Ok(Term::Const(Const::str(&s))),
            Some(t) => Err(self.error(format!("expected term, found {t:?}"))),
            None => Err(self.error("expected term, found end of input")),
        }
    }

    /// Parses an atom: an ordinary predicate application, a parenthesized
    /// or bare infix comparison, or a zero-ary predicate.
    pub fn atom(&mut self) -> Result<Atom> {
        match self.peek() {
            Some(Tok::LParen) => {
                // Parenthesized comparison: "(Z > 3.7)".
                self.bump();
                let l = self.term()?;
                let op = match self.bump().map(|s| s.tok) {
                    Some(Tok::Op(op)) => op,
                    other => {
                        return Err(
                            self.error(format!("expected comparison operator, found {other:?}"))
                        )
                    }
                };
                let r = self.term()?;
                self.expect(&Tok::RParen, "')'")?;
                Ok(Atom::new(op, vec![l, r]))
            }
            Some(Tok::Ident(_)) => {
                let Some(Tok::Ident(p)) = self.bump().map(|s| s.tok) else {
                    unreachable!()
                };
                if self.peek() == Some(&Tok::LParen) {
                    self.bump();
                    let mut args = vec![self.term()?];
                    while self.peek() == Some(&Tok::Comma) {
                        self.bump();
                        args.push(self.term()?);
                    }
                    self.expect(&Tok::RParen, "')'")?;
                    Ok(Atom::new(p.as_str(), args))
                } else {
                    Ok(Atom::new(p.as_str(), vec![]))
                }
            }
            // Bare comparison starting with a non-ident term: "X > 3".
            Some(Tok::Variable(_) | Tok::Int(_) | Tok::Num(_) | Tok::Str(_)) => {
                let l = self.term()?;
                let op = match self.bump().map(|s| s.tok) {
                    Some(Tok::Op(op)) => op,
                    other => {
                        return Err(
                            self.error(format!("expected comparison operator, found {other:?}"))
                        )
                    }
                };
                let r = self.term()?;
                Ok(Atom::new(op, vec![l, r]))
            }
            other => Err(self.error(format!("expected atom, found {other:?}"))),
        }
    }

    /// Parses a body literal: `not atom` or an atom (including infix
    /// comparisons).
    pub fn literal(&mut self) -> Result<Literal> {
        if self.peek() == Some(&Tok::Not) {
            self.bump();
            Ok(Literal::neg(self.atom()?))
        } else {
            Ok(Literal::pos(self.atom()?))
        }
    }

    /// Parses a comma-separated body of literals.
    pub fn body(&mut self) -> Result<Vec<Literal>> {
        let mut lits = vec![self.literal()?];
        while self.peek() == Some(&Tok::Comma) {
            self.bump();
            lits.push(self.literal()?);
        }
        Ok(lits)
    }

    /// Parses one clause (rule or constraint), consuming the final period.
    fn clause(&mut self) -> Result<ClauseKind> {
        if self.peek() == Some(&Tok::If) {
            self.bump();
            let body = self.body()?;
            self.expect(&Tok::Period, "'.'")?;
            let atoms = body
                .into_iter()
                .map(|l| {
                    if l.positive {
                        Ok(l.atom)
                    } else {
                        Err(self.error("negative literal in integrity constraint"))
                    }
                })
                .collect::<Result<Vec<_>>>()?;
            return Ok(ClauseKind::Constraint(Constraint::new(atoms)));
        }
        let head = self.atom()?;
        if head.is_builtin() {
            return Err(self.error("a comparison cannot be the head of a rule"));
        }
        let body = if self.peek() == Some(&Tok::If) {
            self.bump();
            self.body()?
        } else {
            Vec::new()
        };
        self.expect(&Tok::Period, "'.'")?;
        Ok(ClauseKind::Rule(Rule::with_literals(head, body)))
    }

    /// Parses a whole program.
    pub fn program(&mut self) -> Result<Program> {
        let mut p = Program::default();
        while !self.at_end() {
            match self.clause()? {
                ClauseKind::Rule(r) => p.rules.push(r),
                ClauseKind::Constraint(c) => p.constraints.push(c),
            }
        }
        Ok(p)
    }
}

enum ClauseKind {
    Rule(Rule),
    Constraint(Constraint),
}

/// Parses a program (facts, rules, constraints).
pub fn parse_program(src: &str) -> Result<Program> {
    Parser::new(src)?.program()
}

/// Parses a single rule or fact, requiring the trailing period.
pub fn parse_rule(src: &str) -> Result<Rule> {
    let mut p = Parser::new(src)?;
    let c = p.clause()?;
    if !p.at_end() {
        return Err(p.error("trailing input after rule"));
    }
    match c {
        ClauseKind::Rule(r) => Ok(r),
        ClauseKind::Constraint(_) => {
            Err(ParseError::new("expected a rule, found constraint", 1, 1))
        }
    }
}

/// Parses a single atom (no trailing period).
pub fn parse_atom(src: &str) -> Result<Atom> {
    let mut p = Parser::new(src)?;
    let a = p.atom()?;
    if !p.at_end() {
        return Err(p.error("trailing input after atom"));
    }
    Ok(a)
}

/// Parses a comma-separated conjunction of literals (no trailing period),
/// e.g. the qualifier of a query.
pub fn parse_body(src: &str) -> Result<Vec<Literal>> {
    let mut p = Parser::new(src)?;
    let b = p.body()?;
    if !p.at_end() {
        return Err(p.error("trailing input after formula"));
    }
    Ok(b)
}

/// Parses a single term (no trailing input).
pub fn parse_term(src: &str) -> Result<Term> {
    let mut p = Parser::new(src)?;
    let t = p.term()?;
    if !p.at_end() {
        return Err(p.error("trailing input after term"));
    }
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_fact() {
        let r = parse_rule("prereq(databases, datastructures).").unwrap();
        assert!(r.is_fact());
        assert_eq!(r.to_string(), "prereq(databases, datastructures).");
    }

    #[test]
    fn parses_paper_honor_rule() {
        let r = parse_rule("honor(X) :- student(X, Y, Z), Z > 3.7.").unwrap();
        assert_eq!(r.head.pred, "honor");
        assert_eq!(r.body.len(), 2);
        assert!(r.body[1].is_builtin());
        assert_eq!(r.to_string(), "honor(X) :- student(X, Y, Z), (Z > 3.7).");
    }

    #[test]
    fn parses_parenthesized_comparison() {
        let r = parse_rule("honor(X) :- student(X, Y, Z), (Z >= 3.7).").unwrap();
        assert_eq!(r.body[1].atom.pred, ">=");
    }

    #[test]
    fn parses_recursive_prior_rules() {
        let p = parse_program(
            "prior(X, Y) :- prereq(X, Y).\n\
             prior(X, Y) :- prereq(X, Z), prior(Z, Y).",
        )
        .unwrap();
        assert_eq!(p.rules.len(), 2);
        assert_eq!(p.rules[1].body_occurrences("prior"), 1);
    }

    #[test]
    fn parses_paper_can_ta_rules() {
        let p = parse_program(
            "can_ta(X, Y) :- honor(X), complete(X, Y, Z, U), U > 3.3, taught(V, Y, Z, W), teach(V, Y).\n\
             can_ta(X, Y) :- honor(X), complete(X, Y, Z, 4.0).",
        )
        .unwrap();
        assert_eq!(p.rules.len(), 2);
        assert_eq!(p.rules[0].body.len(), 5);
        assert_eq!(p.rules[1].body[1].atom.args[3], Term::num(4.0));
    }

    #[test]
    fn parses_constraint() {
        let ok = parse_program(":- honor(X), suspended(X).").unwrap();
        assert_eq!(ok.constraints.len(), 1);
        assert_eq!(ok.constraints[0].body.len(), 2);
        // Negative literals are rejected inside constraints (Horn form 2
        // of §2.1 is a negated conjunction of positive literals).
        assert!(parse_program(":- foreign(X), not married(X).").is_err());
    }

    #[test]
    fn parses_negative_literal_in_rule_body() {
        let r = parse_rule("p(X) :- q(X), not r(X).").unwrap();
        assert!(!r.body[1].positive);
    }

    #[test]
    fn anonymous_variables_are_fresh() {
        let r = parse_rule("p(X) :- q(X, _), r(_, X).").unwrap();
        let q_anon = r.body[0].atom.args[1].as_var().unwrap().clone();
        let r_anon = r.body[1].atom.args[0].as_var().unwrap().clone();
        assert_ne!(q_anon, r_anon);
        assert!(q_anon.is_fresh());
    }

    #[test]
    fn zero_ary_predicate() {
        let r = parse_rule("halted :- stopped.").unwrap();
        assert_eq!(r.head.arity(), 0);
        assert_eq!(r.body[0].atom.arity(), 0);
    }

    #[test]
    fn comments_are_skipped() {
        let p = parse_program(
            "% paper example\n\
             honor(X) :- student(X, Y, Z), Z > 3.7. // definition\n",
        )
        .unwrap();
        assert_eq!(p.rules.len(), 1);
    }

    #[test]
    fn numbers_lex_correctly_before_period() {
        let r = parse_rule("gpa(ann, 4.0).").unwrap();
        assert_eq!(r.head.args[1], Term::num(4.0));
        let r2 = parse_rule("units(db, 4).").unwrap();
        assert_eq!(r2.head.args[1], Term::int(4));
        let r3 = parse_rule("temp(x, -3).").unwrap();
        assert_eq!(r3.head.args[1], Term::int(-3));
    }

    #[test]
    fn strings_with_escapes() {
        let t = parse_term(r#""fall \"89\"""#).unwrap();
        assert_eq!(t, Term::Const(Const::str("fall \"89\"")));
    }

    #[test]
    fn error_positions_are_reported() {
        let e = parse_rule("honor(X) :- student(X, Y, Z) Z > 3.7.").unwrap_err();
        assert!(e.line >= 1 && e.column > 1, "{e}");
        let e2 = parse_program("p(X)").unwrap_err();
        assert!(e2.message.contains("'.'"), "{e2}");
    }

    #[test]
    fn rejects_builtin_head() {
        assert!(parse_rule("X > 3 :- p(X).").is_err());
    }

    #[test]
    fn rejects_underscore_identifier() {
        assert!(parse_rule("p(_x).").is_err());
    }

    #[test]
    fn parse_body_for_where_clauses() {
        let b = parse_body("student(X, math, V), V > 3.7").unwrap();
        assert_eq!(b.len(), 2);
        assert!(b[1].is_builtin());
    }

    #[test]
    fn display_roundtrip() {
        let srcs = [
            "honor(X) :- student(X, Y, Z), (Z > 3.7).",
            "prior(X, Y) :- prereq(X, Z), prior(Z, Y).",
            "prereq(databases, datastructures).",
            "p(X) :- q(X), not r(X).",
        ];
        for s in srcs {
            let r = parse_rule(s).unwrap();
            assert_eq!(r.to_string(), s);
            // Reparse is identity.
            assert_eq!(parse_rule(&r.to_string()).unwrap(), r);
        }
    }
}
