//! Substitutions.

use crate::atom::{Atom, Literal};
use crate::clause::Rule;
use crate::term::{Term, Var};
use std::collections::HashMap;
use std::fmt;

/// A substitution: a finite mapping from variables to terms.
///
/// Substitutions are kept *idempotent*: no variable in the domain appears in
/// any term of the range. [`Subst::bind`] maintains this invariant by
/// resolving the new binding against the existing mapping and rewriting
/// existing bindings that mention the newly bound variable.
#[derive(Clone, Default, PartialEq, Debug)]
pub struct Subst {
    map: HashMap<Var, Term>,
}

impl Subst {
    /// The empty (identity) substitution.
    pub fn new() -> Self {
        Subst::default()
    }

    /// True if the substitution is the identity.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Number of bound variables.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Looks up the binding of a variable, if any.
    pub fn get(&self, v: &Var) -> Option<&Term> {
        self.map.get(v)
    }

    /// Iterates over the bindings.
    pub fn iter(&self) -> impl Iterator<Item = (&Var, &Term)> {
        self.map.iter()
    }

    /// Binds `v` to `t`, maintaining idempotence. Returns `false` (and
    /// leaves the substitution unchanged) if the binding would be circular
    /// (`v` bound to a term containing `v` after resolution).
    pub fn bind(&mut self, v: Var, t: Term) -> bool {
        let t = self.apply_term(&t);
        if let Term::Var(ref w) = t {
            if *w == v {
                return true; // v ↦ v is the identity; nothing to record.
            }
        }
        // Occurs check is trivial in a function-free language: a variable
        // can only occur in a term if the term *is* that variable.
        if t == Term::Var(v.clone()) {
            return false;
        }
        // Rewrite existing bindings that mention v.
        for existing in self.map.values_mut() {
            if *existing == Term::Var(v.clone()) {
                *existing = t.clone();
            }
        }
        self.map.insert(v, t);
        true
    }

    /// Applies the substitution to a term.
    pub fn apply_term(&self, t: &Term) -> Term {
        match t {
            Term::Var(v) => self.map.get(v).cloned().unwrap_or_else(|| t.clone()),
            Term::Const(_) => t.clone(),
        }
    }

    /// Applies the substitution to an atom.
    pub fn apply_atom(&self, a: &Atom) -> Atom {
        Atom {
            pred: a.pred.clone(),
            args: a.args.iter().map(|t| self.apply_term(t)).collect(),
        }
    }

    /// Applies the substitution to a literal.
    pub fn apply_literal(&self, l: &Literal) -> Literal {
        Literal {
            positive: l.positive,
            atom: self.apply_atom(&l.atom),
        }
    }

    /// Applies the substitution to a rule.
    pub fn apply_rule(&self, r: &Rule) -> Rule {
        Rule {
            head: self.apply_atom(&r.head),
            body: r.body.iter().map(|l| self.apply_literal(l)).collect(),
        }
    }

    /// Composes `self` with `other`: the result applies `self` first, then
    /// `other` (i.e. `t(self∘other) = (t self) other`).
    pub fn compose(&self, other: &Subst) -> Subst {
        let mut out = Subst::new();
        for (v, t) in &self.map {
            let t2 = other.apply_term(t);
            if t2 != Term::Var(v.clone()) {
                out.map.insert(v.clone(), t2);
            }
        }
        for (v, t) in &other.map {
            out.map.entry(v.clone()).or_insert_with(|| t.clone());
        }
        out
    }

    /// Restricts the substitution to the given variables.
    pub fn restrict(&self, vars: &[Var]) -> Subst {
        Subst {
            map: self
                .map
                .iter()
                .filter(|(v, _)| vars.contains(v))
                .map(|(v, t)| (v.clone(), t.clone()))
                .collect(),
        }
    }

    /// True if every binding maps a variable to a constant.
    pub fn is_ground(&self) -> bool {
        self.map.values().all(Term::is_ground)
    }
}

impl fmt::Display for Subst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut entries: Vec<_> = self.map.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        write!(f, "{{")?;
        for (i, (v, t)) in entries.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v} ↦ {t}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<(Var, Term)> for Subst {
    fn from_iter<I: IntoIterator<Item = (Var, Term)>>(iter: I) -> Self {
        let mut s = Subst::new();
        for (v, t) in iter {
            s.bind(v, t);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_and_apply() {
        let mut s = Subst::new();
        assert!(s.bind(Var::new("X"), Term::sym("databases")));
        assert_eq!(s.apply_term(&Term::var("X")), Term::sym("databases"));
        assert_eq!(s.apply_term(&Term::var("Y")), Term::var("Y"));
    }

    #[test]
    fn idempotence_is_maintained() {
        let mut s = Subst::new();
        assert!(s.bind(Var::new("X"), Term::var("Y")));
        assert!(s.bind(Var::new("Y"), Term::int(3)));
        // X must now resolve all the way to 3, not stop at Y.
        assert_eq!(s.apply_term(&Term::var("X")), Term::int(3));
    }

    #[test]
    fn chained_binding_resolves_through_existing() {
        let mut s = Subst::new();
        assert!(s.bind(Var::new("X"), Term::int(1)));
        // Binding Y to X must bind Y to 1 (X is already bound).
        assert!(s.bind(Var::new("Y"), Term::var("X")));
        assert_eq!(s.apply_term(&Term::var("Y")), Term::int(1));
    }

    #[test]
    fn self_binding_is_identity() {
        let mut s = Subst::new();
        assert!(s.bind(Var::new("X"), Term::var("X")));
        assert!(s.is_empty());
    }

    #[test]
    fn apply_rule_substitutes_everywhere() {
        let r = Rule::new(
            Atom::new("honor", vec![Term::var("X")]),
            vec![Atom::new("student", vec![Term::var("X"), Term::var("Z")])],
        );
        let s: Subst = [(Var::new("X"), Term::sym("ann"))].into_iter().collect();
        let r2 = s.apply_rule(&r);
        assert_eq!(r2.to_string(), "honor(ann) :- student(ann, Z).");
    }

    #[test]
    fn compose_applies_left_then_right() {
        let s1: Subst = [(Var::new("X"), Term::var("Y"))].into_iter().collect();
        let s2: Subst = [(Var::new("Y"), Term::int(7))].into_iter().collect();
        let c = s1.compose(&s2);
        assert_eq!(c.apply_term(&Term::var("X")), Term::int(7));
        assert_eq!(c.apply_term(&Term::var("Y")), Term::int(7));
    }

    #[test]
    fn restrict_keeps_only_listed_vars() {
        let s: Subst = [(Var::new("X"), Term::int(1)), (Var::new("Y"), Term::int(2))]
            .into_iter()
            .collect();
        let r = s.restrict(&[Var::new("X")]);
        assert_eq!(r.len(), 1);
        assert_eq!(r.get(&Var::new("X")), Some(&Term::int(1)));
        assert_eq!(r.get(&Var::new("Y")), None);
    }

    #[test]
    fn display_is_sorted() {
        let s: Subst = [(Var::new("Y"), Term::int(2)), (Var::new("X"), Term::int(1))]
            .into_iter()
            .collect();
        assert_eq!(s.to_string(), "{X ↦ 1, Y ↦ 2}");
    }
}
