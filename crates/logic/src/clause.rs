//! Horn clauses: rules, facts, integrity constraints and programs.

use crate::atom::{Atom, Literal};
use crate::term::Var;
use std::fmt;

/// A Horn clause of the paper's first form: `q ← p₁ ∧ … ∧ pₙ`.
///
/// A rule without a body (`n = 0`) and without variables is a *fact*.
/// Variables appearing only in the body are existentially quantified within
/// the body; all others are universally quantified over the rule (§2.1).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Rule {
    /// The head (goal) of the rule.
    pub head: Atom,
    /// The body subgoals. Positive in the paper's core language; negative
    /// literals are admitted for the §6 extensions and stratified negation.
    pub body: Vec<Literal>,
}

impl Rule {
    /// Creates a rule from a head and positive body atoms.
    pub fn new(head: Atom, body: Vec<Atom>) -> Self {
        Rule {
            head,
            body: body.into_iter().map(Literal::pos).collect(),
        }
    }

    /// Creates a rule with explicit literals (possibly negative).
    pub fn with_literals(head: Atom, body: Vec<Literal>) -> Self {
        Rule { head, body }
    }

    /// Creates a fact (a ground, bodyless rule). Panics in debug builds if
    /// the head is not ground.
    pub fn fact(head: Atom) -> Self {
        debug_assert!(head.is_ground(), "facts must be ground: {head}");
        Rule {
            head,
            body: Vec::new(),
        }
    }

    /// True if this rule is a fact: no body and no variables.
    pub fn is_fact(&self) -> bool {
        self.body.is_empty() && self.head.is_ground()
    }

    /// True if every body literal is positive (the paper's core language).
    pub fn is_positive(&self) -> bool {
        self.body.iter().all(|l| l.positive)
    }

    /// The distinct variables of the rule, head first, in order of first
    /// occurrence.
    pub fn vars(&self) -> Vec<Var> {
        let mut all = Vec::new();
        self.head.collect_vars(&mut all);
        for l in &self.body {
            l.atom.collect_vars(&mut all);
        }
        let mut seen = Vec::new();
        for v in all {
            if !seen.contains(&v) {
                seen.push(v);
            }
        }
        seen
    }

    /// The body atoms that are not built-in comparisons.
    pub fn body_db_atoms(&self) -> impl Iterator<Item = &Atom> {
        self.body
            .iter()
            .filter(|l| l.positive && !l.is_builtin())
            .map(|l| &l.atom)
    }

    /// Number of occurrences of `pred` among the body's database atoms.
    pub fn body_occurrences(&self, pred: &str) -> usize {
        self.body_db_atoms().filter(|a| a.pred == pred).count()
    }

    /// True if this rule is *typed with respect to* the predicate `pred`
    /// (§2.1): every variable occurs in at most one fixed argument position
    /// across all occurrences of `pred` in the rule (head and body).
    ///
    /// A rule containing `p(X, Y)` and `p(Y, Z)` is not typed w.r.t. `p`
    /// (Y occurs in position 1 and position 0), nor is one containing
    /// `q(X, X)` typed w.r.t. `q`.
    pub fn is_typed_wrt(&self, pred: &str) -> bool {
        let mut position_of: std::collections::HashMap<&Var, usize> =
            std::collections::HashMap::new();
        let occurrences = std::iter::once(&self.head)
            .chain(self.body.iter().map(|l| &l.atom))
            .filter(|a| a.pred == pred);
        for atom in occurrences {
            for (i, t) in atom.args.iter().enumerate() {
                if let crate::term::Term::Var(v) = t {
                    match position_of.entry(v) {
                        std::collections::hash_map::Entry::Occupied(e) => {
                            if *e.get() != i {
                                return false;
                            }
                        }
                        std::collections::hash_map::Entry::Vacant(e) => {
                            e.insert(i);
                        }
                    }
                }
            }
        }
        true
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.head)?;
        if !self.body.is_empty() {
            write!(f, " :- ")?;
            for (i, l) in self.body.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{l}")?;
            }
        }
        write!(f, ".")
    }
}

/// A Horn clause of the paper's second form: an integrity constraint
/// `¬(p₁ ∧ … ∧ pₙ)`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Constraint {
    /// The conjunction that must never hold.
    pub body: Vec<Atom>,
}

impl Constraint {
    /// Creates a constraint forbidding the conjunction of `body`.
    pub fn new(body: Vec<Atom>) -> Self {
        Constraint { body }
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, ":- ")?;
        for (i, a) in self.body.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ".")
    }
}

/// A parsed program: facts, rules and integrity constraints in source order.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Program {
    /// Rules (including facts, which are bodyless ground rules).
    pub rules: Vec<Rule>,
    /// Integrity constraints.
    pub constraints: Vec<Constraint>,
}

impl Program {
    /// Splits the program into facts and proper rules.
    pub fn split_facts(&self) -> (Vec<Rule>, Vec<Rule>) {
        self.rules.iter().cloned().partition(Rule::is_fact)
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in &self.rules {
            writeln!(f, "{r}")?;
        }
        for c in &self.constraints {
            writeln!(f, "{c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Term;

    fn atom(p: &str, args: Vec<Term>) -> Atom {
        Atom::new(p, args)
    }

    #[test]
    fn fact_detection() {
        let f = Rule::fact(atom("prereq", vec![Term::sym("db"), Term::sym("ds")]));
        assert!(f.is_fact());
        let r = Rule::new(
            atom("honor", vec![Term::var("X")]),
            vec![atom("student", vec![Term::var("X")])],
        );
        assert!(!r.is_fact());
    }

    #[test]
    fn rule_vars_in_order() {
        let r = Rule::new(
            atom("can_ta", vec![Term::var("X"), Term::var("Y")]),
            vec![
                atom("honor", vec![Term::var("X")]),
                atom(
                    "complete",
                    vec![Term::var("X"), Term::var("Y"), Term::var("Z")],
                ),
            ],
        );
        let names: Vec<String> = r.vars().iter().map(|v| v.to_string()).collect();
        assert_eq!(names, ["X", "Y", "Z"]);
    }

    #[test]
    fn typedness_paper_examples() {
        // prior(X, Y) :- prereq(X, Z), prior(Z, Y).  — typed w.r.t. prior.
        let typed = Rule::new(
            atom("prior", vec![Term::var("X"), Term::var("Y")]),
            vec![
                atom("prereq", vec![Term::var("X"), Term::var("Z")]),
                atom("prior", vec![Term::var("Z"), Term::var("Y")]),
            ],
        );
        assert!(typed.is_typed_wrt("prior"));

        // A rule with p(X, Y) and p(Y, Z) is not typed w.r.t. p (§2.1).
        let untyped = Rule::new(
            atom("q", vec![Term::var("X"), Term::var("Z")]),
            vec![
                atom("p", vec![Term::var("X"), Term::var("Y")]),
                atom("p", vec![Term::var("Y"), Term::var("Z")]),
            ],
        );
        assert!(!untyped.is_typed_wrt("p"));

        // A rule including q(X, X) is not typed w.r.t. q (§2.1).
        let diag = Rule::new(
            atom("r", vec![Term::var("X")]),
            vec![atom("q", vec![Term::var("X"), Term::var("X")])],
        );
        assert!(!diag.is_typed_wrt("q"));
    }

    #[test]
    fn body_occurrence_counting_skips_builtins() {
        let r = Rule::with_literals(
            atom("p", vec![Term::var("X")]),
            vec![
                Literal::pos(atom("p", vec![Term::var("Y")])),
                Literal::pos(Atom::new(">", vec![Term::var("Y"), Term::int(0)])),
                Literal::pos(atom("p", vec![Term::var("Z")])),
            ],
        );
        assert_eq!(r.body_occurrences("p"), 2);
        assert_eq!(r.body_occurrences(">"), 0);
    }

    #[test]
    fn display_rule_and_constraint() {
        let r = Rule::new(
            atom("honor", vec![Term::var("X")]),
            vec![atom("student", vec![Term::var("X"), Term::var("Y")])],
        );
        assert_eq!(r.to_string(), "honor(X) :- student(X, Y).");
        let c = Constraint::new(vec![atom("p", vec![Term::var("X")])]);
        assert_eq!(c.to_string(), ":- p(X).");
    }
}
