//! Compiled intermediate representation of rules.
//!
//! The tree-walking evaluator threads an idempotent
//! [`Subst`](crate::Subst) — a `HashMap<Var, Term>` — through every rule
//! firing, cloning it per matched tuple. The compiled representation
//! instead assigns every distinct variable of a rule a *positional slot*
//! once, at compile time, so execution state collapses to a flat
//! [`Frame`]: a `Vec<Option<Const>>` indexed by slot. Binding is a vector
//! write, unbinding on backtrack is a vector write of `None`, and no
//! hashing happens on the hot path.
//!
//! A [`CompiledRule`] keeps its [`Rule`] source alongside the slot-mapped
//! atoms so diagnostics (unsafe-rule reports, non-ground heads) can be
//! rendered exactly as the uncompiled evaluator rendered them.

use crate::clause::Rule;
use crate::intern::{Interner, SymId};
use crate::symbol::Sym;
use crate::term::{Const, Term, Var};
use crate::{Atom, Literal};
use std::fmt;

/// Flat positional binding state: one entry per rule slot.
///
/// `None` means the slot's variable is still unbound. Cloning a frame is a
/// single `Vec` clone — but the executor rarely needs to: bindings made
/// while matching a tuple are undone in place on backtrack.
#[derive(Clone, Debug, PartialEq)]
pub struct Frame(Vec<Option<Const>>);

impl Frame {
    /// An all-unbound frame with `n` slots.
    pub fn new(n: usize) -> Self {
        Frame(vec![None; n])
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if the frame has no slots.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The value bound to `slot`, if any.
    pub fn get(&self, slot: u32) -> Option<&Const> {
        self.0[slot as usize].as_ref()
    }

    /// Binds `slot` to `value` (overwrites silently; the executor checks
    /// compatibility first).
    pub fn set(&mut self, slot: u32, value: Const) {
        self.0[slot as usize] = Some(value);
    }

    /// Unbinds `slot`.
    pub fn clear(&mut self, slot: u32) {
        self.0[slot as usize] = None;
    }
}

/// A term in slot form: a positional slot or an inline constant.
#[derive(Clone, Debug, PartialEq)]
pub enum IrTerm {
    /// The rule variable assigned this slot.
    Slot(u32),
    /// A constant occurrence.
    Const(Const),
}

impl IrTerm {
    /// Resolves the term under `frame`: the bound value, the constant, or
    /// `None` for an unbound slot.
    pub fn resolve<'a>(&'a self, frame: &'a Frame) -> Option<&'a Const> {
        match self {
            IrTerm::Slot(s) => frame.get(*s),
            IrTerm::Const(c) => Some(c),
        }
    }
}

/// An atom in slot form. The textual predicate [`Sym`] rides along with
/// its dense [`SymId`] so execution never hashes strings and diagnostics
/// never consult the interner.
#[derive(Clone, Debug, PartialEq)]
pub struct IrAtom {
    /// The predicate symbol (for rendering and storage lookups).
    pub pred: Sym,
    /// The predicate's dense id in the owning program's interner.
    pub pred_id: SymId,
    /// The argument terms in slot form.
    pub args: Vec<IrTerm>,
}

impl IrAtom {
    /// Reifies the atom under `frame` back into the term vocabulary:
    /// bound slots become constants, unbound slots their source variable.
    /// Used only off the hot path, for diagnostics.
    pub fn reify(&self, frame: &Frame, slots: &[Var]) -> Atom {
        let args = self
            .args
            .iter()
            .map(|t| match t {
                IrTerm::Const(c) => Term::Const(c.clone()),
                IrTerm::Slot(s) => match frame.get(*s) {
                    Some(c) => Term::Const(c.clone()),
                    None => Term::Var(slots[*s as usize].clone()),
                },
            })
            .collect();
        Atom::new(self.pred.clone(), args)
    }
}

impl fmt::Display for IrAtom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/", self.pred)?;
        write!(f, "{}", self.args.len())
    }
}

/// A literal in slot form.
#[derive(Clone, Debug, PartialEq)]
pub struct IrLiteral {
    /// Polarity.
    pub positive: bool,
    /// The underlying atom.
    pub atom: IrAtom,
}

/// A rule compiled to slot form.
///
/// Slots are assigned to the rule's distinct variables in order of first
/// occurrence, head first — the same order as [`Rule::vars`] — so slot 0
/// is the first head variable and head projection is a prefix-friendly
/// gather.
#[derive(Clone, Debug)]
pub struct CompiledRule {
    /// The head in slot form.
    pub head: IrAtom,
    /// The body in slot form, in source order.
    pub body: Vec<IrLiteral>,
    /// Slot index → source variable (for reification and diagnostics).
    pub slots: Vec<Var>,
    /// The uncompiled rule, kept for diagnostics that must render the
    /// original text (`EngineError::UnsafeRule` carries `rule.to_string()`).
    pub source: Rule,
}

impl CompiledRule {
    /// Compiles `rule`, interning every predicate symbol into `interner`.
    pub fn compile(rule: &Rule, interner: &mut Interner) -> Self {
        let slots = rule.vars();
        let slot_of = |v: &Var| -> u32 {
            // Rule::vars() is tiny (a handful of variables); linear scan
            // beats building a map at compile time too.
            slots
                .iter()
                .position(|s| s == v)
                .map(|i| i as u32)
                .unwrap_or(u32::MAX)
        };
        let compile_atom = |a: &Atom, interner: &mut Interner| -> IrAtom {
            IrAtom {
                pred: a.pred.clone(),
                pred_id: interner.intern(&a.pred),
                args: a
                    .args
                    .iter()
                    .map(|t| match t {
                        Term::Var(v) => IrTerm::Slot(slot_of(v)),
                        Term::Const(c) => IrTerm::Const(c.clone()),
                    })
                    .collect(),
            }
        };
        let head = compile_atom(&rule.head, interner);
        let body = rule
            .body
            .iter()
            .map(|l| IrLiteral {
                positive: l.positive,
                atom: compile_atom(&l.atom, interner),
            })
            .collect();
        CompiledRule {
            head,
            body,
            slots,
            source: rule.clone(),
        }
    }

    /// Number of slots (distinct variables) in the rule.
    pub fn num_slots(&self) -> usize {
        self.slots.len()
    }

    /// The slot assigned to `v`, if `v` occurs in the rule.
    pub fn slot_of(&self, v: &Var) -> Option<u32> {
        self.slots.iter().position(|s| s == v).map(|i| i as u32)
    }

    /// Standardizes the rule apart using the slot map instead of
    /// re-collecting variables: one fresh variable per slot (slot order is
    /// exactly [`Rule::vars`] order, so the fresh names match
    /// [`rename_rule_apart`](crate::rename_rule_apart) byte for byte),
    /// then a direct gather through the head/body slot maps. This lets the
    /// derivation-tree enumerator (`describe`) rename rules from the same
    /// compiled program representation the `retrieve` executor runs.
    pub fn rename_apart(&self, gen: &mut crate::VarGen) -> Rule {
        let fresh: Vec<Var> = self.slots.iter().map(|v| gen.fresh_from(v)).collect();
        let atom = |a: &IrAtom| -> Atom {
            Atom::new(
                a.pred.clone(),
                a.args
                    .iter()
                    .map(|t| match t {
                        IrTerm::Const(c) => Term::Const(c.clone()),
                        IrTerm::Slot(s) => Term::Var(fresh[*s as usize].clone()),
                    })
                    .collect(),
            )
        };
        Rule::with_literals(
            atom(&self.head),
            self.body
                .iter()
                .map(|l| Literal {
                    positive: l.positive,
                    atom: atom(&l.atom),
                })
                .collect(),
        )
    }

    /// Reifies a body literal under `frame` for diagnostics.
    pub fn reify_literal(&self, lit: &IrLiteral, frame: &Frame) -> Literal {
        Literal {
            positive: lit.positive,
            atom: lit.atom.reify(frame, &self.slots),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn rule(src: &str) -> Rule {
        parse_program(src).unwrap().rules.remove(0)
    }

    #[test]
    fn slots_follow_first_occurrence_head_first() {
        let r = rule("can_ta(X, Y) :- honor(X), complete(X, Y, Z).");
        let mut i = Interner::new();
        let c = CompiledRule::compile(&r, &mut i);
        let names: Vec<&str> = c.slots.iter().map(Var::name).collect();
        assert_eq!(names, ["X", "Y", "Z"]);
        assert_eq!(c.head.args, vec![IrTerm::Slot(0), IrTerm::Slot(1)]);
        assert_eq!(
            c.body[1].atom.args,
            vec![IrTerm::Slot(0), IrTerm::Slot(1), IrTerm::Slot(2)]
        );
    }

    #[test]
    fn constants_compile_inline_and_predicates_intern() {
        let r = rule("honor(X) :- student(X, math, G), G > 3.7.");
        let mut i = Interner::new();
        let c = CompiledRule::compile(&r, &mut i);
        assert_eq!(c.body[0].atom.args[1], IrTerm::Const(Const::sym("math")));
        assert_eq!(i.resolve(c.body[0].atom.pred_id).as_str(), "student");
        // Same predicate in another rule interns to the same id.
        let c2 = CompiledRule::compile(&rule("p(X) :- student(X, Y, Z)."), &mut i);
        assert_eq!(c.body[0].atom.pred_id, c2.body[0].atom.pred_id);
    }

    #[test]
    fn rename_apart_matches_subst_based_renaming() {
        // The slot-map rename must be indistinguishable from the
        // substitution-based one: same fresh names, same order, same
        // polarities — `describe`'s rendered theorems depend on it.
        let r =
            rule("can_ta(X, Y) :- honor(X), not failed(X, Y), complete(X, Y, Z, 4.0), Z > 3.3.");
        let mut i = Interner::new();
        let c = CompiledRule::compile(&r, &mut i);
        let mut g1 = crate::VarGen::new();
        let mut g2 = crate::VarGen::new();
        let (reference, _) = crate::rename_rule_apart(&r, &mut g1);
        let via_slots = c.rename_apart(&mut g2);
        assert_eq!(via_slots.to_string(), reference.to_string());
        assert_eq!(via_slots, reference);
    }

    #[test]
    fn frame_bind_and_reify() {
        let r = rule("p(X, Y) :- q(X), r(Y).");
        let mut i = Interner::new();
        let c = CompiledRule::compile(&r, &mut i);
        let mut f = Frame::new(c.num_slots());
        f.set(0, Const::sym("a"));
        let head = c.head.reify(&f, &c.slots);
        assert_eq!(head.to_string(), "p(a, Y)");
        f.clear(0);
        assert_eq!(f.get(0), None);
        assert_eq!(c.head.reify(&f, &c.slots).to_string(), "p(X, Y)");
    }
}
