//! Errors for the logic layer.

use std::fmt;

/// A parse error with source position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of what went wrong.
    pub message: String,
    /// 1-based line of the offending token.
    pub line: usize,
    /// 1-based column of the offending token.
    pub column: usize,
}

impl ParseError {
    pub(crate) fn new(message: impl Into<String>, line: usize, column: usize) -> Self {
        ParseError {
            message: message.into(),
            line,
            column,
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at {}:{}: {}",
            self.line, self.column, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Result alias for parsing.
pub type Result<T> = std::result::Result<T, ParseError>;
