//! Constants, variables and terms.

use crate::symbol::Sym;
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// A constant value.
///
/// The paper's language is function-free first-order logic over a universe
/// of students, courses, grades and the like, together with built-in
/// comparison predicates over numbers. `Const` therefore covers symbols
/// (lower-case identifiers such as `databases` or `susan`), integers,
/// floating-point numbers (grade-point averages such as `3.7`), strings and
/// booleans.
#[derive(Clone, Debug)]
pub enum Const {
    /// A symbolic constant, e.g. `databases`.
    Sym(Sym),
    /// An integer, e.g. `4`.
    Int(i64),
    /// A floating-point number, e.g. `3.7`. Total order via `f64::total_cmp`.
    Num(f64),
    /// A quoted string, e.g. `"Fall 1989"`.
    Str(Sym),
    /// A boolean.
    Bool(bool),
}

impl Const {
    /// Creates a symbolic constant.
    pub fn sym(s: &str) -> Self {
        Const::Sym(Sym::new(s))
    }

    /// Creates a string constant.
    pub fn str(s: &str) -> Self {
        Const::Str(Sym::new(s))
    }

    /// Returns the numeric value if this constant is a number (integer or
    /// float), for comparison built-ins.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Const::Int(i) => Some(*i as f64),
            Const::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// True if the two constants are comparable with ordering built-ins
    /// (`<`, `<=`, `>`, `>=`): both numbers, or both symbols/strings.
    pub fn comparable(&self, other: &Const) -> bool {
        self.as_f64().is_some() && other.as_f64().is_some()
            || matches!(
                (self, other),
                (Const::Sym(_), Const::Sym(_))
                    | (Const::Str(_), Const::Str(_))
                    | (Const::Bool(_), Const::Bool(_))
            )
    }
}

impl PartialEq for Const {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Const {}

impl PartialOrd for Const {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Const {
    /// Total order: numbers (ints and floats interleaved by value) < symbols
    /// < strings < booleans. The cross-kind order is arbitrary but fixed; it
    /// exists so constants can key ordered collections.
    fn cmp(&self, other: &Self) -> Ordering {
        use Const::*;
        fn kind(c: &Const) -> u8 {
            match c {
                Int(_) | Num(_) => 0,
                Sym(_) => 1,
                Str(_) => 2,
                Bool(_) => 3,
            }
        }
        match (self, other) {
            (Int(a), Int(b)) => a.cmp(b),
            (Num(a), Num(b)) => a.total_cmp(b),
            (Int(a), Num(b)) => (*a as f64).total_cmp(b),
            (Num(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Sym(a), Sym(b)) | (Str(a), Str(b)) => a.cmp(b),
            (Bool(a), Bool(b)) => a.cmp(b),
            _ => kind(self).cmp(&kind(other)),
        }
    }
}

impl Hash for Const {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            // Int and Num that compare equal must hash equal.
            Const::Int(i) => (*i as f64).to_bits().hash(state),
            Const::Num(n) => n.to_bits().hash(state),
            Const::Sym(s) => {
                1u8.hash(state);
                s.hash(state);
            }
            Const::Str(s) => {
                2u8.hash(state);
                s.hash(state);
            }
            Const::Bool(b) => {
                3u8.hash(state);
                b.hash(state);
            }
        }
    }
}

impl fmt::Display for Const {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Const::Sym(s) => write!(f, "{s}"),
            Const::Int(i) => write!(f, "{i}"),
            Const::Num(n) => {
                if n.fract() == 0.0 && n.is_finite() && n.abs() < 1e15 {
                    write!(f, "{n:.1}")
                } else {
                    write!(f, "{n}")
                }
            }
            Const::Str(s) => write!(f, "{:?}", s.as_str()),
            Const::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<i64> for Const {
    fn from(i: i64) -> Self {
        Const::Int(i)
    }
}

impl From<f64> for Const {
    fn from(n: f64) -> Self {
        Const::Num(n)
    }
}

impl From<bool> for Const {
    fn from(b: bool) -> Self {
        Const::Bool(b)
    }
}

impl From<&str> for Const {
    fn from(s: &str) -> Self {
        Const::sym(s)
    }
}

/// A variable.
///
/// Following the paper's convention, user variables begin with a capital
/// letter (`X`, `Gpa`). Fresh variables generated internally (by
/// [`crate::VarGen`]) use names beginning with `_`, which the parser never
/// produces, so freshness is guaranteed by construction.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub Sym);

impl Var {
    /// Creates a variable with the given name.
    pub fn new(name: &str) -> Self {
        Var(Sym::new(name))
    }

    /// The variable's name.
    pub fn name(&self) -> &str {
        self.0.as_str()
    }

    /// True if this is an internally generated (fresh) variable.
    pub fn is_fresh(&self) -> bool {
        self.name().starts_with('_')
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "?{}", self.name())
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl From<&str> for Var {
    fn from(s: &str) -> Self {
        Var::new(s)
    }
}

/// A term: a variable or a constant (the language is function-free).
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum Term {
    /// A variable occurrence.
    Var(Var),
    /// A constant occurrence.
    Const(Const),
}

impl Term {
    /// Creates a variable term.
    pub fn var(name: &str) -> Self {
        Term::Var(Var::new(name))
    }

    /// Creates a symbolic-constant term.
    pub fn sym(name: &str) -> Self {
        Term::Const(Const::sym(name))
    }

    /// Creates an integer term.
    pub fn int(i: i64) -> Self {
        Term::Const(Const::Int(i))
    }

    /// Creates a float term.
    pub fn num(n: f64) -> Self {
        Term::Const(Const::Num(n))
    }

    /// Returns the variable if this term is one.
    pub fn as_var(&self) -> Option<&Var> {
        match self {
            Term::Var(v) => Some(v),
            Term::Const(_) => None,
        }
    }

    /// Returns the constant if this term is one.
    pub fn as_const(&self) -> Option<&Const> {
        match self {
            Term::Const(c) => Some(c),
            Term::Var(_) => None,
        }
    }

    /// True if the term is ground (contains no variable).
    pub fn is_ground(&self) -> bool {
        matches!(self, Term::Const(_))
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Const(c) => write!(f, "{c}"),
        }
    }
}

impl From<Var> for Term {
    fn from(v: Var) -> Self {
        Term::Var(v)
    }
}

impl From<Const> for Term {
    fn from(c: Const) -> Self {
        Term::Const(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of<T: Hash>(t: &T) -> u64 {
        let mut h = DefaultHasher::new();
        t.hash(&mut h);
        h.finish()
    }

    #[test]
    fn int_and_num_compare_and_hash_consistently() {
        let a = Const::Int(4);
        let b = Const::Num(4.0);
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
        assert!(Const::Num(3.7) > Const::Int(3));
        assert!(Const::Int(4) > Const::Num(3.7));
    }

    #[test]
    fn cross_kind_order_is_total_and_antisymmetric() {
        let samples = [
            Const::Int(1),
            Const::Num(2.5),
            Const::sym("a"),
            Const::str("a"),
            Const::Bool(false),
        ];
        for x in &samples {
            for y in &samples {
                match x.cmp(y) {
                    Ordering::Less => assert_eq!(y.cmp(x), Ordering::Greater),
                    Ordering::Greater => assert_eq!(y.cmp(x), Ordering::Less),
                    Ordering::Equal => assert_eq!(y.cmp(x), Ordering::Equal),
                }
            }
        }
    }

    #[test]
    fn comparability() {
        assert!(Const::Int(3).comparable(&Const::Num(3.7)));
        assert!(Const::sym("a").comparable(&Const::sym("b")));
        assert!(!Const::sym("a").comparable(&Const::Int(1)));
        assert!(!Const::str("a").comparable(&Const::sym("a")));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Const::Num(3.7).to_string(), "3.7");
        assert_eq!(Const::Num(4.0).to_string(), "4.0");
        assert_eq!(Const::Int(4).to_string(), "4");
        assert_eq!(Const::sym("databases").to_string(), "databases");
        assert_eq!(Const::str("a b").to_string(), "\"a b\"");
        assert_eq!(Term::var("Gpa").to_string(), "Gpa");
    }

    #[test]
    fn fresh_variable_detection() {
        assert!(Var::new("_7").is_fresh());
        assert!(!Var::new("X").is_fresh());
    }

    #[test]
    fn term_accessors() {
        let v = Term::var("X");
        let c = Term::int(3);
        assert!(v.as_var().is_some());
        assert!(v.as_const().is_none());
        assert!(c.is_ground());
        assert!(!v.is_ground());
    }
}
