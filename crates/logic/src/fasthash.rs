//! A fast, deterministic hasher for the evaluation hot paths.
//!
//! Fact storage hashes every tuple several times per insert (dedup set
//! plus one index per column), and `std`'s default SipHash is the single
//! largest constant factor in bottom-up rounds. This is the classic
//! multiply-rotate hash used by rustc ("Fx"): not DoS-resistant, which is
//! fine for derived-fact working sets, and seed-free, so map iteration
//! order is reproducible across runs — evaluation diagnostics don't
//! depend on a per-process hash seed.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-rotate hasher over 64-bit words.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            let mut w = [0u8; 8];
            w.copy_from_slice(c);
            self.add(u64::from_le_bytes(w));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut w = [0u8; 8];
            w[..rest.len()].copy_from_slice(rest);
            // Length-tag the tail so "a" and "a\0" hash differently.
            w[7] = w[7].wrapping_add(rest.len() as u8);
            self.add(u64::from_le_bytes(w));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_u128(&mut self, n: u128) {
        self.add(n as u64);
        self.add((n >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hash_of(bytes: &[u8]) -> u64 {
        let mut h = FxHasher::default();
        h.write(bytes);
        h.finish()
    }

    #[test]
    fn deterministic_across_instances() {
        assert_eq!(hash_of(b"prereq"), hash_of(b"prereq"));
    }

    #[test]
    fn distinguishes_tail_lengths() {
        assert_ne!(hash_of(b"a"), hash_of(b"a\0"));
        assert_ne!(hash_of(b""), hash_of(b"\0"));
    }

    #[test]
    fn maps_work_with_composite_keys() {
        let mut m: FxHashMap<(String, i64), usize> = FxHashMap::default();
        m.insert(("x".into(), 1), 10);
        m.insert(("x".into(), 2), 20);
        assert_eq!(m.get(&("x".to_string(), 2)), Some(&20));
        assert_eq!(m.len(), 2);
    }
}
