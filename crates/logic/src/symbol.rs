//! Interned-style symbols.

use std::borrow::Borrow;
use std::fmt;
use std::sync::Arc;

/// A cheaply clonable immutable string used for predicate names, constant
/// names and variable names.
///
/// `Sym` wraps an `Arc<str>`, so cloning is a reference-count bump. Equality
/// and hashing are by string content (not pointer), so symbols created
/// independently from equal text compare equal — there is no global interner
/// and therefore no global lock.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sym(Arc<str>);

impl Sym {
    /// Creates a symbol from a string slice.
    pub fn new(s: &str) -> Self {
        Sym(Arc::from(s))
    }

    /// Returns the symbol's text.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Debug for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.as_str())
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for Sym {
    fn from(s: &str) -> Self {
        Sym::new(s)
    }
}

impl From<String> for Sym {
    fn from(s: String) -> Self {
        Sym(Arc::from(s))
    }
}

impl Borrow<str> for Sym {
    fn borrow(&self) -> &str {
        self.as_str()
    }
}

impl AsRef<str> for Sym {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

impl PartialEq<str> for Sym {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for Sym {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn equality_is_by_content() {
        let a = Sym::new("student");
        let b = Sym::from("student".to_string());
        assert_eq!(a, b);
        assert_eq!(a, "student");
        assert_ne!(a, Sym::new("professor"));
    }

    #[test]
    fn clone_is_cheap_and_equal() {
        let a = Sym::new("prereq");
        let b = a.clone();
        assert_eq!(a, b);
        // Clones share the allocation.
        assert!(Arc::ptr_eq(&a.0, &b.0));
    }

    #[test]
    fn usable_as_hash_key_via_str_borrow() {
        let mut set = HashSet::new();
        set.insert(Sym::new("honor"));
        assert!(set.contains("honor"));
        assert!(!set.contains("prior"));
    }

    #[test]
    fn ordering_is_lexicographic() {
        let mut v = [Sym::new("c"), Sym::new("a"), Sym::new("b")];
        v.sort();
        let names: Vec<&str> = v.iter().map(|s| s.as_str()).collect();
        assert_eq!(names, ["a", "b", "c"]);
    }
}
