//! Dense symbol interning.
//!
//! [`Sym`] equality hashes an `Arc<str>` by content: cheap to clone, but
//! every hash-join probe and predicate-table lookup re-hashes the string
//! bytes. The compiled evaluation path (see `qdk-logic::ir` and
//! `qdk-engine::plan`) instead addresses predicates and symbolic constants
//! by dense `u32` ids handed out by an [`Interner`].
//!
//! The interner is *local* — one per compiled program (and therefore, at
//! the language layer, one per `KnowledgeBase`), never global. It sits
//! entirely behind the existing [`Sym`] API: parsers, pretty-printers and
//! the term/atom/rule vocabulary are untouched, and ids never leak into
//! rendered output.

use crate::symbol::Sym;
use std::collections::HashMap;
use std::fmt;

/// A dense id for an interned [`Sym`], valid only for the [`Interner`]
/// that produced it.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SymId(pub u32);

impl SymId {
    /// The id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for SymId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Maps symbols to dense `u32` ids and back.
///
/// Interning the same text twice yields the same id; ids are handed out
/// consecutively from zero, so they index the side tables the planner
/// builds (`Vec`s instead of `HashMap<Sym, _>`s).
#[derive(Clone, Debug, Default)]
pub struct Interner {
    syms: Vec<Sym>,
    map: HashMap<Sym, u32>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a symbol, returning its dense id.
    pub fn intern(&mut self, s: &Sym) -> SymId {
        if let Some(&id) = self.map.get(s) {
            return SymId(id);
        }
        let id = u32::try_from(self.syms.len()).unwrap_or(u32::MAX);
        self.syms.push(s.clone());
        self.map.insert(s.clone(), id);
        SymId(id)
    }

    /// Interns a string slice, returning its dense id.
    pub fn intern_str(&mut self, s: &str) -> SymId {
        if let Some(&id) = self.map.get(s) {
            return SymId(id);
        }
        self.intern(&Sym::new(s))
    }

    /// Resolves an id back to its symbol. Ids come only from this
    /// interner's `intern`, so the lookup is a plain index.
    pub fn resolve(&self, id: SymId) -> &Sym {
        &self.syms[id.index()]
    }

    /// Looks up the id of an already interned symbol without inserting.
    pub fn lookup(&self, s: &str) -> Option<SymId> {
        self.map.get(s).copied().map(SymId)
    }

    /// Number of distinct symbols interned.
    pub fn len(&self) -> usize {
        self.syms.len()
    }

    /// True if nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.syms.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_dense() {
        let mut i = Interner::new();
        let a = i.intern(&Sym::new("student"));
        let b = i.intern(&Sym::new("prereq"));
        let a2 = i.intern_str("student");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn resolve_roundtrips() {
        let mut i = Interner::new();
        let id = i.intern_str("honor");
        assert_eq!(i.resolve(id).as_str(), "honor");
        assert_eq!(i.lookup("honor"), Some(id));
        assert_eq!(i.lookup("absent"), None);
    }
}
