//! Fresh-variable generation and renaming rules apart.

use crate::atom::Atom;
use crate::clause::Rule;
use crate::subst::Subst;
use crate::term::{Term, Var};

/// A generator of fresh variables.
///
/// Fresh variables are named `_0`, `_1`, … — names the parser never
/// produces for user variables, so freshness against any parsed program is
/// guaranteed by construction.
#[derive(Debug, Default, Clone)]
pub struct VarGen {
    next: u64,
}

impl VarGen {
    /// Creates a generator starting at `_0`.
    pub fn new() -> Self {
        VarGen::default()
    }

    /// Returns a fresh variable.
    pub fn fresh(&mut self) -> Var {
        let v = Var::new(&format!("_{}", self.next));
        self.next += 1;
        v
    }

    /// Returns a fresh variable whose name hints at its origin, e.g.
    /// `_3Z` for a renamed `Z`. Keeping the source name makes printed
    /// derivations easier to follow while remaining collision-free.
    pub fn fresh_from(&mut self, origin: &Var) -> Var {
        let v = Var::new(&format!("_{}{}", self.next, origin.name()));
        self.next += 1;
        v
    }
}

/// Renames all variables of `rule` to fresh ones, returning the renamed
/// rule and the renaming used. The renaming is injective, so the result is
/// a variant of the input (standardizing apart, §4 footnote 3).
pub fn rename_rule_apart(rule: &Rule, gen: &mut VarGen) -> (Rule, Subst) {
    let renaming: Subst = rule
        .vars()
        .into_iter()
        .map(|v| {
            let fresh = gen.fresh_from(&v);
            (v, Term::Var(fresh))
        })
        .collect();
    (renaming.apply_rule(rule), renaming)
}

/// Renames all variables occurring in a slice of atoms to fresh ones.
pub fn rename_atoms_apart(atoms: &[Atom], gen: &mut VarGen) -> (Vec<Atom>, Subst) {
    let mut vars = Vec::new();
    for a in atoms {
        a.collect_vars(&mut vars);
    }
    let mut seen = Vec::new();
    for v in vars {
        if !seen.contains(&v) {
            seen.push(v);
        }
    }
    let renaming: Subst = seen
        .into_iter()
        .map(|v| {
            let fresh = gen.fresh_from(&v);
            (v, Term::Var(fresh))
        })
        .collect();
    let renamed = atoms.iter().map(|a| renaming.apply_atom(a)).collect();
    (renamed, renaming)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_vars_are_distinct_and_flagged() {
        let mut g = VarGen::new();
        let a = g.fresh();
        let b = g.fresh();
        assert_ne!(a, b);
        assert!(a.is_fresh() && b.is_fresh());
    }

    #[test]
    fn renamed_rule_shares_no_variables_with_original() {
        let r = Rule::new(
            Atom::new("prior", vec![Term::var("X"), Term::var("Y")]),
            vec![
                Atom::new("prereq", vec![Term::var("X"), Term::var("Z")]),
                Atom::new("prior", vec![Term::var("Z"), Term::var("Y")]),
            ],
        );
        let mut g = VarGen::new();
        let (r2, _) = rename_rule_apart(&r, &mut g);
        let orig: Vec<Var> = r.vars();
        for v in r2.vars() {
            assert!(!orig.contains(&v), "{v} leaked");
        }
        // Structure is preserved: same shared-variable pattern.
        assert_eq!(r2.head.args[0], r2.body[0].atom.args[0]);
        assert_eq!(r2.body[0].atom.args[1], r2.body[1].atom.args[0]);
        assert_eq!(r2.head.args[1], r2.body[1].atom.args[1]);
    }

    #[test]
    fn renaming_is_injective() {
        let r = Rule::new(Atom::new("p", vec![Term::var("X"), Term::var("Y")]), vec![]);
        let mut g = VarGen::new();
        let (r2, _) = rename_rule_apart(&r, &mut g);
        assert_ne!(r2.head.args[0], r2.head.args[1]);
    }

    #[test]
    fn rename_atoms_keeps_shared_structure() {
        let atoms = vec![
            Atom::new("p", vec![Term::var("X"), Term::var("Y")]),
            Atom::new("q", vec![Term::var("Y")]),
        ];
        let mut g = VarGen::new();
        let (renamed, _) = rename_atoms_apart(&atoms, &mut g);
        assert_eq!(renamed[0].args[1], renamed[1].args[0]);
        assert_ne!(renamed[0].args[0], atoms[0].args[0]);
    }

    #[test]
    fn fresh_from_embeds_origin_name() {
        let mut g = VarGen::new();
        let v = g.fresh_from(&Var::new("Gpa"));
        assert!(v.name().ends_with("Gpa"));
        assert!(v.is_fresh());
    }
}
