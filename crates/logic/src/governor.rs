//! Unified resource governor shared by every evaluation stack.
//!
//! The paper's own Examples 6–8 show that `describe` on recursive subjects
//! can diverge, and §6 bounds untyped recursion by capping rule
//! applications: resource exhaustion is a *first-class semantic outcome* of
//! querying database knowledge, not an accident. This module replaces the
//! seed's scattered, incompatible guards (tree-operation budgets in
//! `qdk-core`, rule-firing budgets in `qdk-engine`, silent `max_depth`
//! pruning) with one vocabulary:
//!
//! * [`ResourceLimits`] — declarative bounds: wall-clock deadline, abstract
//!   work budget, derivation-tree depth, and derived-fact count;
//! * [`CancelToken`] — cheap cooperative cancellation, flippable from
//!   another thread;
//! * [`Governor`] — the runtime accountant, ticked from evaluation inner
//!   loops, with amortized clock polling (the clock and the cancel flag are
//!   consulted every [`Governor::POLL_INTERVAL`] ticks, not every tick);
//! * [`Exhausted`] — the structured diagnostic every layer reports, naming
//!   the [`Resource`] that ran out, how much was spent, and the limit.
//!
//! The governor lives in `qdk-logic` (the dependency-free base crate) so
//! that both `qdk-engine` and `qdk-core` can share the *same* types; the
//! `qdk-core::governor` module re-exports everything for facade users.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Declarative bounds on one evaluation. All limits default to `None`
/// (unbounded); combine freely with the builder methods.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ResourceLimits {
    /// Wall-clock bound for the whole evaluation.
    pub deadline: Option<Duration>,
    /// Abstract work budget: one unit per governor tick (a rule firing in
    /// the engine, a tree operation in describe).
    pub work_budget: Option<u64>,
    /// Maximum derivation-tree depth (describe pipeline only).
    pub max_depth: Option<usize>,
    /// Maximum number of derived facts (bottom-up engine strategies).
    pub max_facts: Option<usize>,
}

impl ResourceLimits {
    /// No limits at all.
    pub const UNBOUNDED: ResourceLimits = ResourceLimits {
        deadline: None,
        work_budget: None,
        max_depth: None,
        max_facts: None,
    };

    /// Set a wall-clock deadline.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Set an abstract work budget (rule firings / tree operations).
    #[must_use]
    pub fn with_work_budget(mut self, budget: u64) -> Self {
        self.work_budget = Some(budget);
        self
    }

    /// Set a maximum derivation-tree depth.
    #[must_use]
    pub fn with_max_depth(mut self, depth: usize) -> Self {
        self.max_depth = Some(depth);
        self
    }

    /// Set a maximum derived-fact count.
    #[must_use]
    pub fn with_max_facts(mut self, facts: usize) -> Self {
        self.max_facts = Some(facts);
        self
    }

    /// True when no limit is set (the governor can skip all accounting).
    pub fn is_unbounded(&self) -> bool {
        *self == ResourceLimits::UNBOUNDED
    }
}

/// The resource that ran out.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Resource {
    /// The wall-clock deadline passed.
    Deadline,
    /// The abstract work budget was spent.
    WorkBudget,
    /// The derivation-tree depth bound was reached.
    Depth,
    /// The derived-fact bound was reached.
    Facts,
    /// The evaluation was cancelled from another thread.
    Cancelled,
}

impl fmt::Display for Resource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Resource::Deadline => "deadline",
            Resource::WorkBudget => "work budget",
            Resource::Depth => "depth",
            Resource::Facts => "fact count",
            Resource::Cancelled => "cancellation",
        };
        f.write_str(name)
    }
}

/// Structured exhaustion diagnostic: which resource ran out, how much was
/// spent, and what the limit was. `spent`/`limit` are in the resource's
/// natural unit (milliseconds for [`Resource::Deadline`], ticks for
/// [`Resource::WorkBudget`], levels for [`Resource::Depth`], facts for
/// [`Resource::Facts`]; both are 0 for [`Resource::Cancelled`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Exhausted {
    /// The resource that ran out.
    pub resource: Resource,
    /// How much of it was consumed when the limit tripped.
    pub spent: u64,
    /// The configured limit.
    pub limit: u64,
}

impl fmt::Display for Exhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.resource {
            Resource::Cancelled => write!(f, "evaluation cancelled"),
            Resource::Deadline => write!(
                f,
                "deadline exhausted: {}ms spent of {}ms allowed",
                self.spent, self.limit
            ),
            r => write!(
                f,
                "{r} exhausted: {} spent of {} allowed",
                self.spent, self.limit
            ),
        }
    }
}

impl std::error::Error for Exhausted {}

/// Cooperative cancellation flag, cheaply clonable and checkable from any
/// thread. Cancelling is sticky: once set, every governor sharing the token
/// trips with [`Resource::Cancelled`] at its next poll.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Request cancellation of every evaluation holding a clone.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Has cancellation been requested?
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// Runtime resource accountant. Construct one per evaluation, call
/// [`Governor::tick`] from inner loops, and report the returned
/// [`Exhausted`] diagnostic. The first trip wins and is sticky: after any
/// limit trips, every subsequent check returns the same diagnostic.
///
/// Governors are *share-safe*: the counters and the sticky trip live in
/// atomics behind an `Arc`, so `Clone` hands out another handle onto the
/// **same** accounting — one deadline, one work budget and one fact bound
/// govern every worker thread of a parallel evaluation, and the first trip
/// observed by any worker is the diagnostic all of them report. Spend is
/// aggregated across threads (`spent` in the diagnostic is the global
/// total, not one worker's share).
#[derive(Clone, Debug)]
pub struct Governor {
    limits: ResourceLimits,
    cancel: Option<CancelToken>,
    start: Instant,
    shared: Arc<GovernorState>,
}

/// The cross-thread accounting cell shared by every clone of a governor.
#[derive(Debug, Default)]
struct GovernorState {
    ticks: AtomicU64,
    facts: AtomicU64,
    tripped: OnceLock<Exhausted>,
}

impl Governor {
    /// The clock and cancel flag are polled once per this many ticks;
    /// work-budget and fact limits are exact.
    pub const POLL_INTERVAL: u64 = 256;

    /// Governor enforcing `limits`, with the clock starting now.
    pub fn new(limits: ResourceLimits) -> Self {
        Governor {
            limits,
            cancel: None,
            start: Instant::now(),
            shared: Arc::new(GovernorState::default()),
        }
    }

    /// An unbounded governor (all accounting is skipped).
    pub fn unbounded() -> Self {
        Governor::new(ResourceLimits::UNBOUNDED)
    }

    /// Attach a cooperative cancellation token.
    #[must_use]
    pub fn with_cancel(mut self, cancel: Option<CancelToken>) -> Self {
        self.cancel = cancel;
        self
    }

    /// The limits this governor enforces.
    pub fn limits(&self) -> &ResourceLimits {
        &self.limits
    }

    /// Units of work spent so far (across every clone of this governor).
    pub fn work_spent(&self) -> u64 {
        self.shared.ticks.load(Ordering::Relaxed)
    }

    /// The first limit that tripped, if any.
    pub fn tripped(&self) -> Option<Exhausted> {
        self.shared.tripped.get().copied()
    }

    /// Record one unit of work. Returns the sticky exhaustion diagnostic if
    /// any limit has tripped. Cheap: the work counter is exact, while the
    /// clock and cancel flag are consulted only every
    /// [`Governor::POLL_INTERVAL`] ticks.
    pub fn tick(&self) -> Result<(), Exhausted> {
        if let Some(e) = self.tripped() {
            return Err(e);
        }
        let ticks = self.shared.ticks.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(budget) = self.limits.work_budget {
            if ticks > budget {
                return Err(self.trip(Resource::WorkBudget, ticks, budget));
            }
        }
        // Poll on the first tick (so pre-expired deadlines and already
        // cancelled tokens are caught immediately) and then once per
        // interval.
        if ticks % Self::POLL_INTERVAL == 1 {
            self.poll()?;
        }
        Ok(())
    }

    /// Record `n` newly derived facts. Returns the sticky diagnostic if the
    /// fact limit (or a previously tripped limit) is exceeded.
    pub fn add_facts(&self, n: usize) -> Result<(), Exhausted> {
        if let Some(e) = self.tripped() {
            return Err(e);
        }
        let facts = self.shared.facts.fetch_add(n as u64, Ordering::Relaxed) + n as u64;
        if let Some(max) = self.limits.max_facts {
            if facts > max as u64 {
                return Err(self.trip(Resource::Facts, facts, max as u64));
            }
        }
        Ok(())
    }

    /// Check a derivation-tree depth against the depth limit without
    /// recording work. Returns the diagnostic the *caller* should attach if
    /// `depth` is at or beyond the bound (the governor also records it as
    /// its sticky trip so the truncation is reported, not silent).
    pub fn check_depth(&self, depth: usize) -> Result<(), Exhausted> {
        if let Some(e) = self.tripped() {
            return Err(e);
        }
        if let Some(max) = self.limits.max_depth {
            if depth >= max {
                return Err(self.trip(Resource::Depth, depth as u64, max as u64));
            }
        }
        Ok(())
    }

    /// Force the clock/cancellation poll regardless of tick phase. Useful
    /// before expensive non-tick work (e.g. a post-processing pass) and as
    /// the cancellation check of worker threads, which observe a deadline
    /// or cancel promptly without contributing coordinator work ticks.
    pub fn poll(&self) -> Result<(), Exhausted> {
        if let Some(e) = self.tripped() {
            return Err(e);
        }
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                return Err(self.trip(Resource::Cancelled, 0, 0));
            }
        }
        if let Some(deadline) = self.limits.deadline {
            let elapsed = self.start.elapsed();
            if elapsed > deadline {
                return Err(self.trip(
                    Resource::Deadline,
                    elapsed.as_millis() as u64,
                    deadline.as_millis() as u64,
                ));
            }
        }
        Ok(())
    }

    fn trip(&self, resource: Resource, spent: u64, limit: u64) -> Exhausted {
        let e = Exhausted {
            resource,
            spent,
            limit,
        };
        // First trip wins, racing clones included: if another thread has
        // already tripped, its diagnostic is the sticky one.
        let _ = self.shared.tripped.set(e);
        *self.shared.tripped.get().unwrap_or(&e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn unbounded_never_trips() {
        let g = Governor::unbounded();
        for _ in 0..100_000 {
            g.tick().unwrap();
        }
        g.add_facts(1_000_000).unwrap();
        assert_eq!(g.tripped(), None);
    }

    #[test]
    fn work_budget_is_exact_and_sticky() {
        let g = Governor::new(ResourceLimits::default().with_work_budget(10));
        for _ in 0..10 {
            g.tick().unwrap();
        }
        let e = g.tick().unwrap_err();
        assert_eq!(e.resource, Resource::WorkBudget);
        assert_eq!(e.spent, 11);
        assert_eq!(e.limit, 10);
        // Sticky: the same diagnostic comes back, and other checks fail too.
        assert_eq!(g.tick().unwrap_err(), e);
        assert_eq!(g.add_facts(1).unwrap_err(), e);
        assert_eq!(g.tripped(), Some(e));
    }

    #[test]
    fn deadline_trips_via_amortized_poll() {
        let g = Governor::new(ResourceLimits::default().with_deadline(Duration::from_millis(1)));
        thread::sleep(Duration::from_millis(5));
        // The first tick polls, so an already-expired deadline is caught
        // immediately.
        let e = g.tick().unwrap_err();
        assert_eq!(e.resource, Resource::Deadline);
        assert!(e.spent >= e.limit);
        assert_eq!(e.limit, 1);
    }

    #[test]
    fn deadline_polling_is_amortized() {
        let g = Governor::new(ResourceLimits::default().with_deadline(Duration::from_secs(3600)));
        // Ticks between poll boundaries must not consult the clock; this
        // just exercises the fast path for a large tick count.
        for _ in 0..10_000 {
            g.tick().unwrap();
        }
        assert_eq!(g.work_spent(), 10_000);
    }

    #[test]
    fn fact_limit_trips() {
        let g = Governor::new(ResourceLimits::default().with_max_facts(100));
        g.add_facts(60).unwrap();
        let e = g.add_facts(60).unwrap_err();
        assert_eq!(e.resource, Resource::Facts);
        assert_eq!(e.spent, 120);
        assert_eq!(e.limit, 100);
    }

    #[test]
    fn depth_check_trips_at_bound() {
        let g = Governor::new(ResourceLimits::default().with_max_depth(4));
        g.check_depth(3).unwrap();
        let e = g.check_depth(4).unwrap_err();
        assert_eq!(e.resource, Resource::Depth);
        assert_eq!(e.limit, 4);
    }

    #[test]
    fn cancel_token_observed_cross_thread() {
        let token = CancelToken::new();
        let g = Governor::new(ResourceLimits::default()).with_cancel(Some(token.clone()));
        let handle = thread::spawn(move || token.cancel());
        handle.join().unwrap();
        let e = g.poll().unwrap_err();
        assert_eq!(e.resource, Resource::Cancelled);
    }

    #[test]
    fn clones_share_accounting_across_threads() {
        // One budget governs all workers: clones aggregate spend, and the
        // first trip is the sticky diagnostic for every clone.
        let g = Governor::new(ResourceLimits::default().with_work_budget(1000));
        let workers: Vec<_> = (0..4).map(|_| g.clone()).collect();
        thread::scope(|s| {
            for w in &workers {
                s.spawn(move || {
                    for _ in 0..300 {
                        if w.tick().is_err() {
                            return;
                        }
                    }
                });
            }
        });
        // 4 × 300 = 1200 attempted ticks against a budget of 1000.
        let e = g.tick().unwrap_err();
        assert_eq!(e.resource, Resource::WorkBudget);
        assert_eq!(e.limit, 1000);
        assert!(e.spent > 1000);
        for w in &workers {
            assert_eq!(w.tripped(), Some(e));
        }
    }

    #[test]
    fn clones_share_fact_accounting() {
        let g = Governor::new(ResourceLimits::default().with_max_facts(10));
        let h = g.clone();
        g.add_facts(6).unwrap();
        let e = h.add_facts(6).unwrap_err();
        assert_eq!(e.resource, Resource::Facts);
        assert_eq!(e.spent, 12);
        assert_eq!(g.tripped(), Some(e));
    }

    #[test]
    fn display_is_human_readable() {
        let e = Exhausted {
            resource: Resource::WorkBudget,
            spent: 11,
            limit: 10,
        };
        assert_eq!(
            e.to_string(),
            "work budget exhausted: 11 spent of 10 allowed"
        );
        let d = Exhausted {
            resource: Resource::Deadline,
            spent: 55,
            limit: 50,
        };
        assert_eq!(
            d.to_string(),
            "deadline exhausted: 55ms spent of 50ms allowed"
        );
    }
}
