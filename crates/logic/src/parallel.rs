//! Parallelism configuration shared by both evaluation stacks.
//!
//! Both statements accept a worker count: `retrieve`'s fixpoints partition
//! each iteration across workers, and `describe`'s tree enumeration expands
//! frontier nodes on a pool. The type lives here (next to the governor) so
//! `EvalOptions` and `DescribeOptions` speak the same vocabulary.

use std::fmt;

/// Worker count for a parallel evaluation.
///
/// The default ([`Parallelism::auto`]) resolves to the platform's available
/// cores, overridable with the `QDK_TEST_THREADS` environment variable (the
/// CI matrix pins the sequential path with `QDK_TEST_THREADS=1`).
/// [`Parallelism::SEQUENTIAL`] (`1`) is guaranteed to take the exact
/// sequential code path — no threads, no merge, byte-identical behaviour to
/// the pre-parallel engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Parallelism(usize);

impl Parallelism {
    /// The exact sequential path: one worker, no threads spawned.
    pub const SEQUENTIAL: Parallelism = Parallelism(1);

    /// Exactly `n` workers (`0` is treated as `1`).
    pub fn workers(n: usize) -> Self {
        Parallelism(n.max(1))
    }

    /// Platform default: `QDK_TEST_THREADS` if set to a positive integer,
    /// otherwise the number of available cores. Resolved once per process
    /// and cached — the environment probe and the `available_parallelism`
    /// syscall cost microseconds, which dominates warm bound queries when
    /// paid on every `EvalOptions::default()`.
    pub fn auto() -> Self {
        static AUTO: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
        Parallelism(*AUTO.get_or_init(|| {
            if let Ok(v) = std::env::var("QDK_TEST_THREADS") {
                if let Ok(n) = v.trim().parse::<usize>() {
                    if n > 0 {
                        return n;
                    }
                }
            }
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        }))
    }

    /// The resolved worker count (always ≥ 1).
    pub fn get(self) -> usize {
        self.0
    }

    /// True when evaluation must take the exact sequential path.
    pub fn is_sequential(self) -> bool {
        self.0 <= 1
    }
}

impl Default for Parallelism {
    fn default() -> Self {
        Parallelism::auto()
    }
}

impl fmt::Display for Parallelism {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<usize> for Parallelism {
    fn from(n: usize) -> Self {
        Parallelism::workers(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_clamps_to_one() {
        assert_eq!(Parallelism::workers(0).get(), 1);
        assert!(Parallelism::workers(0).is_sequential());
    }

    #[test]
    fn explicit_counts_pass_through() {
        assert_eq!(Parallelism::workers(4).get(), 4);
        assert!(!Parallelism::workers(4).is_sequential());
        assert_eq!(Parallelism::from(8).get(), 8);
    }

    #[test]
    fn sequential_constant_is_one() {
        assert_eq!(Parallelism::SEQUENTIAL.get(), 1);
        assert!(Parallelism::SEQUENTIAL.is_sequential());
    }

    #[test]
    fn auto_is_positive() {
        assert!(Parallelism::auto().get() >= 1);
    }

    #[test]
    fn displays_as_count() {
        assert_eq!(Parallelism::workers(3).to_string(), "3");
    }
}
