//! First-order-logic substrate for the *Querying Database Knowledge*
//! reproduction (Motro & Yuan, SIGMOD 1990).
//!
//! This crate provides the logical vocabulary every other layer builds on:
//!
//! * [`Sym`] — cheaply clonable interned-style symbols;
//! * [`Const`] and [`Term`] — constants and terms (a term is a variable or
//!   a constant; the paper's language is function-free, i.e. datalog);
//! * [`Atom`], [`Literal`], [`Rule`] — atomic formulas, literals and Horn
//!   clauses in the two forms of §2.1 of the paper (rules and integrity
//!   constraints);
//! * [`Subst`] — substitutions, most-general unifiers ([`unify`]) and
//!   one-way matching ([`match_atom`]);
//! * variable renaming ([`VarGen`], [`rename_rule_apart`]) used to
//!   standardize rules apart during resolution;
//! * θ-subsumption ([`subsume::rule_subsumes`]) used for redundancy
//!   elimination of knowledge answers;
//! * a text [`parser`] and paper-style [`pretty`] printing;
//! * the compiled-evaluation substrate: a per-program [`Interner`] mapping
//!   symbols to dense ids and an [`ir`] module ([`CompiledRule`],
//!   [`Frame`]) that maps rule variables to positional slots — the
//!   program representation `qdk-engine` plans over and executes;
//! * the shared resource [`governor`] ([`ResourceLimits`], [`Governor`],
//!   [`CancelToken`], [`Exhausted`]) that bounds both evaluation stacks —
//!   it lives here, in the dependency-free base crate, so `qdk-engine` and
//!   `qdk-core` govern with the *same* types;
//! * the structured [`obs`] event layer ([`ObsSink`], [`Sink`], [`Event`])
//!   both evaluation stacks report spans and counters through — disabled
//!   by default and zero-cost when disabled.
//!
//! The crate is dependency-free and purely functional: all structures are
//! immutable values, which keeps the term-rewriting layers above it easy to
//! reason about.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(clippy::print_stderr, clippy::print_stdout)]

mod atom;
mod clause;
mod error;
pub mod fasthash;
pub mod governor;
pub mod intern;
pub mod ir;
pub mod metrics;
pub mod obs;
pub mod parallel;
pub mod parser;
pub mod pretty;
mod rename;
mod subst;
pub mod subsume;
mod symbol;
mod term;
mod unify;

pub use atom::{Atom, Literal};
pub use clause::{Constraint, Program, Rule};
pub use error::{ParseError, Result};
pub use fasthash::{FxHashMap, FxHashSet, FxHasher};
pub use governor::{CancelToken, Exhausted, Governor, Resource, ResourceLimits};
pub use intern::{Interner, SymId};
pub use ir::{CompiledRule, Frame, IrAtom, IrLiteral, IrTerm};
pub use obs::{Event, ObsSink, Sink};
pub use parallel::Parallelism;
pub use rename::{rename_atoms_apart, rename_rule_apart, VarGen};
pub use subst::Subst;
pub use symbol::Sym;
pub use term::{Const, Term, Var};
pub use unify::{match_atom, match_term, unify, unify_atoms};
