//! Torn-write and corruption properties of recovery.
//!
//! A crash can truncate the WAL anywhere; bit rot can flip any byte.
//! Whatever the damage, opening the store must never panic, must recover
//! the longest valid prefix of the logged history, and must report what
//! it discarded. (CRC32 detects every single-bit flip, so a flipped
//! record can never decode as a different valid record — recovery is
//! always a *prefix*, never a corruption of surviving history.)

use proptest::prelude::*;
use qdk_durability::{wal, DurabilityOptions, Durable, FsyncPolicy, WalOp};
use qdk_logic::parser::parse_atom;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};

fn temp_dir(tag: &str) -> PathBuf {
    static N: AtomicU32 = AtomicU32::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("qdk-corrupt-{tag}-{}-{n}", std::process::id()))
}

fn opts() -> DurabilityOptions {
    DurabilityOptions {
        fsync: FsyncPolicy::Never,
        checkpoint_every_ops: None,
    }
}

/// Writes `n` ops into a fresh store and returns (dir, ops).
fn build_store(tag: &str, n: usize) -> (PathBuf, Vec<WalOp>) {
    let dir = temp_dir(tag);
    let mut ops = vec![WalOp::Declare {
        name: "edge".into(),
        attrs: vec!["from".into(), "to".into()],
        key: None,
    }];
    for i in 0..n {
        let atom = parse_atom(&format!("edge(n{i}, n{})", i + 1)).unwrap();
        ops.push(WalOp::add_fact(&atom).unwrap());
    }
    let mut d = Durable::open(&dir, opts()).unwrap().durable;
    for op in &ops {
        d.append(op).unwrap();
    }
    d.sync().unwrap();
    (dir, ops)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Truncating the WAL at any offset: recovery never panics, recovers
    /// exactly the records whose frames survived whole, reports the torn
    /// remainder, and the store accepts new appends afterwards.
    #[test]
    fn truncation_recovers_longest_valid_prefix(n in 1usize..24, cut in 0u32..10_000) {
        let (dir, ops) = build_store("trunc", n);
        let wal_path = dir.join("wal.log");
        let bytes = std::fs::read(&wal_path).unwrap();
        let cut = cut as usize % (bytes.len() + 1);
        std::fs::write(&wal_path, &bytes[..cut]).unwrap();

        let opened = Durable::open(&dir, opts()).unwrap();
        let recovered = opened.tail.len();
        prop_assert!(recovered <= ops.len());
        // Recovered records are exactly a prefix of what was logged.
        for (i, rec) in opened.tail.iter().enumerate() {
            prop_assert_eq!(&rec.op, &ops[i]);
            prop_assert_eq!(rec.lsn.0, i as u64 + 1);
        }
        prop_assert_eq!(opened.report.replayed, recovered as u64);
        if cut < bytes.len() && recovered == ops.len() {
            // Shortened file but all records intact: only possible if the
            // cut landed exactly at the end of the last frame.
            prop_assert_eq!(opened.report.discarded_tail_bytes, 0);
        }
        // The healed store keeps working: next append lands at the next
        // LSN and survives a clean reopen.
        let mut d = opened.durable;
        let extra = WalOp::add_fact(&parse_atom("edge(x, y)").unwrap()).unwrap();
        let (lsn, _) = d.append(&extra).unwrap();
        prop_assert_eq!(lsn.0, recovered as u64 + 1);
        d.sync().unwrap();
        drop(d);
        let reopened = Durable::open(&dir, opts()).unwrap();
        prop_assert_eq!(reopened.report.discarded_tail_bytes, 0);
        prop_assert_eq!(reopened.tail.len(), recovered + 1);
        prop_assert_eq!(&reopened.tail.last().unwrap().op, &extra);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Flipping any single byte: recovery never panics; it either reports
    /// corrupt history (header damage) or recovers a strict prefix with
    /// the damage counted in the discarded tail.
    #[test]
    fn bit_flip_never_panics_and_never_corrupts_survivors(
        n in 1usize..24,
        pos in 0u32..10_000,
        bit in 0u8..8,
    ) {
        let (dir, ops) = build_store("flip", n);
        let wal_path = dir.join("wal.log");
        let mut bytes = std::fs::read(&wal_path).unwrap();
        let pos = pos as usize % bytes.len();
        bytes[pos] ^= 1 << bit;
        std::fs::write(&wal_path, &bytes).unwrap();

        match Durable::open(&dir, opts()) {
            Err(e) => {
                // Only damage to the 8-byte magic is fatal.
                prop_assert!(pos < 8, "unexpected error {e} for flip at {pos}");
            }
            Ok(opened) => {
                prop_assert!(opened.tail.len() < ops.len());
                for (i, rec) in opened.tail.iter().enumerate() {
                    prop_assert_eq!(&rec.op, &ops[i]);
                }
                prop_assert!(opened.report.discarded_tail_bytes > 0);
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// `wal::scan` itself never panics on arbitrary bytes after a valid
    /// header — the decoder is total.
    #[test]
    fn scan_is_total_over_arbitrary_bytes(garbage in proptest::collection::vec(0u8..255, 0..256)) {
        let dir = temp_dir("arb");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal.log");
        let mut bytes = b"QDKWAL01".to_vec();
        bytes.extend_from_slice(&garbage);
        std::fs::write(&path, &bytes).unwrap();
        let scan = wal::scan(&path).unwrap();
        // Whatever decoded, the accounting always covers the whole file.
        let consumed: u64 = scan.valid_len + scan.discarded_tail_bytes;
        prop_assert_eq!(consumed, bytes.len() as u64);
        std::fs::remove_dir_all(&dir).ok();
    }
}
