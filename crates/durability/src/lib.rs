//! Durability for the knowledge base: write-ahead log, checkpoint
//! snapshots, and crash recovery.
//!
//! Everything above this crate is in-memory; this crate makes the
//! *declared* state of a knowledge base — predicate declarations, stored
//! facts, rules, integrity constraints and key declarations — survive a
//! process crash. The design follows the classic WAL discipline
//! (DESIGN.md §14):
//!
//! * every mutation is appended to an append-only **write-ahead log**
//!   ([`wal`]) as a length-prefixed, CRC32-checksummed binary record
//!   *before* it is applied in memory, under a configurable
//!   [`FsyncPolicy`];
//! * a **checkpoint** ([`checkpoint`]) periodically snapshots the full
//!   EDB + rule set, serialized through a dense `u32` symbol table (the
//!   same interning scheme the compiled query core uses), written
//!   atomically (temp file + rename) and stamped with the LSN it covers;
//!   the WAL is then truncated past that LSN;
//! * **recovery-on-open** loads the latest valid checkpoint and replays
//!   the WAL tail, tolerating a torn or truncated final record: scanning
//!   stops at the first bad CRC and the discarded bytes are reported in a
//!   structured [`RecoveryReport`] — corruption is never a panic.
//!
//! Deliberately **not** logged: derived facts (recomputed by the engine),
//! compiled plans and caches (rebuilt on demand), and query activity.
//! The log is a log of *knowledge*, not of work.
//!
//! The crate is storage-layer only: it knows how to persist and recover
//! the operations ([`WalOp`]) and state ([`checkpoint::CheckpointData`]),
//! while `qdk-lang::KnowledgeBase` owns applying them through the exact
//! same code paths live mutations take.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(clippy::print_stderr, clippy::print_stdout)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod checkpoint;
mod codec;
mod crc32;
mod durable;
mod error;
mod op;
pub mod wal;

pub use checkpoint::{CheckpointData, RelationSnapshot};
pub use durable::{DurabilityMetrics, DurabilityOptions, Durable, Opened};
pub use error::{DurabilityError, Result};
pub use op::WalOp;
pub use wal::{FsyncPolicy, Lsn, RecoveryReport, WalRecord};
