//! The durable-store handle: one directory holding a WAL and at most one
//! checkpoint, with LSN assignment and checkpoint scheduling.
//!
//! Layout of a store directory:
//!
//! ```text
//! store/
//! ├── wal.log         append-only log (crate::wal)
//! └── checkpoint.ckp  latest snapshot (crate::checkpoint), may be absent
//! ```
//!
//! [`Durable::open`] performs recovery: load the checkpoint if present,
//! scan the WAL, keep only the records past the checkpoint's LSN, and
//! hand both back (as [`Opened`]) for the knowledge base to apply through
//! its ordinary mutation paths. The handle itself never interprets ops —
//! it assigns LSNs, appends, schedules checkpoints and meters bytes.

use crate::checkpoint::{self, CheckpointData};
use crate::error::{DurabilityError, Result};
use crate::op::WalOp;
use crate::wal::{self, FsyncPolicy, Lsn, RecoveryReport, WalRecord, WalWriter};
use std::path::{Path, PathBuf};

/// WAL file name inside a store directory.
pub const WAL_FILE: &str = "wal.log";
/// Checkpoint file name inside a store directory.
pub const CHECKPOINT_FILE: &str = "checkpoint.ckp";

/// Tuning knobs for a durable store.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DurabilityOptions {
    /// How eagerly WAL appends reach stable storage.
    pub fsync: FsyncPolicy,
    /// Take a checkpoint after this many logged ops (`None`: only when
    /// asked explicitly).
    pub checkpoint_every_ops: Option<u64>,
}

impl Default for DurabilityOptions {
    fn default() -> Self {
        DurabilityOptions {
            fsync: FsyncPolicy::Always,
            checkpoint_every_ops: Some(1024),
        }
    }
}

impl DurabilityOptions {
    /// Fastest safe preset for bulk loads: batched fsync, periodic
    /// checkpoints.
    pub fn bulk_load() -> Self {
        DurabilityOptions {
            fsync: FsyncPolicy::EveryN(64),
            checkpoint_every_ops: Some(8192),
        }
    }
}

/// Counters a durable store accumulates over its lifetime (process-local,
/// not persisted). Mirrored into the obs layer by the session facade.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DurabilityMetrics {
    /// Records appended to the WAL since open.
    pub wal_appends: u64,
    /// Bytes appended to the WAL since open (frames + payloads).
    pub wal_bytes: u64,
    /// Fsyncs issued by the WAL writer since open.
    pub wal_fsyncs: u64,
    /// Checkpoints taken since open.
    pub checkpoints: u64,
    /// Bytes written by the latest checkpoint.
    pub last_checkpoint_bytes: u64,
    /// The LSN of the most recent logged mutation (0 if none).
    pub last_lsn: u64,
    /// The LSN the latest checkpoint covers (0 if none) — recovered from
    /// disk on open, so the lag survives restarts.
    pub checkpoint_lsn: u64,
}

impl DurabilityMetrics {
    /// How many logged mutations the latest checkpoint does not cover —
    /// the WAL replay debt a crash right now would incur.
    pub fn checkpoint_lsn_lag(&self) -> u64 {
        self.last_lsn.saturating_sub(self.checkpoint_lsn)
    }
}

/// An open durable store.
#[derive(Debug)]
pub struct Durable {
    dir: PathBuf,
    writer: WalWriter,
    opts: DurabilityOptions,
    next_lsn: Lsn,
    ops_since_checkpoint: u64,
    metrics: DurabilityMetrics,
    report: RecoveryReport,
}

/// What [`Durable::open`] recovered, for the caller to apply before any
/// new mutation: the snapshot (if any), then the WAL tail in log order.
#[derive(Debug)]
pub struct Opened {
    /// The ready-to-append handle.
    pub durable: Durable,
    /// The latest checkpoint, absent on first open or if never taken.
    pub checkpoint: Option<CheckpointData>,
    /// WAL records past the checkpoint, in log order.
    pub tail: Vec<WalRecord>,
    /// Recovery accounting (also retained on the handle).
    pub report: RecoveryReport,
}

impl Durable {
    /// Opens (creating if absent) the store at `dir` and recovers its
    /// state. Never panics on a torn or truncated WAL tail — the damage
    /// is measured and reported instead.
    pub fn open(dir: &Path, opts: DurabilityOptions) -> Result<Opened> {
        std::fs::create_dir_all(dir).map_err(|e| DurabilityError::io("create dir", dir, &e))?;
        let ckp_path = dir.join(CHECKPOINT_FILE);
        let wal_path = dir.join(WAL_FILE);

        let checkpoint = checkpoint::read(&ckp_path)?;
        let floor = checkpoint.as_ref().map(|c| c.last_lsn).unwrap_or_default();
        let scan = wal::scan(&wal_path)?;
        if scan.discarded_tail_bytes > 0 {
            // Physically remove the torn tail so new appends land right
            // after the last intact record, not after garbage the
            // scanner would stop at on the next open.
            wal::truncate_to(&wal_path, scan.valid_len)?;
        }
        // Records at or below the checkpoint LSN are already inside the
        // snapshot (a crash between checkpoint publish and WAL truncate
        // leaves them behind); replay only what the snapshot misses.
        let tail: Vec<WalRecord> = scan.records.into_iter().filter(|r| r.lsn > floor).collect();
        let last_lsn = tail.last().map(|r| r.lsn).unwrap_or(floor);

        let report = RecoveryReport {
            checkpointed: checkpoint
                .as_ref()
                .map(CheckpointData::op_count)
                .unwrap_or(0),
            replayed: tail.len() as u64,
            discarded_tail_bytes: scan.discarded_tail_bytes,
            last_lsn: (last_lsn > Lsn(0)).then_some(last_lsn),
        };

        let writer = WalWriter::open(&wal_path, opts.fsync)?;
        let durable = Durable {
            dir: dir.to_path_buf(),
            writer,
            opts,
            next_lsn: Lsn(last_lsn.0 + 1),
            ops_since_checkpoint: tail.len() as u64,
            metrics: DurabilityMetrics {
                checkpoint_lsn: floor.0,
                ..DurabilityMetrics::default()
            },
            report: report.clone(),
        };
        Ok(Opened {
            durable,
            checkpoint,
            tail,
            report,
        })
    }

    /// Logs one mutation, assigning it the next LSN. Returns the LSN and
    /// the bytes appended. Must be called *before* the mutation is
    /// applied in memory — the WAL discipline.
    pub fn append(&mut self, op: &WalOp) -> Result<(Lsn, u64)> {
        let lsn = self.next_lsn;
        let bytes = self.writer.append(lsn, op)?;
        self.next_lsn = Lsn(lsn.0 + 1);
        self.ops_since_checkpoint += 1;
        self.metrics.wal_appends += 1;
        self.metrics.wal_bytes += bytes;
        Ok((lsn, bytes))
    }

    /// True once enough ops have accumulated that the configured policy
    /// wants a checkpoint.
    pub fn should_checkpoint(&self) -> bool {
        match self.opts.checkpoint_every_ops {
            Some(n) if n > 0 => self.ops_since_checkpoint >= n,
            _ => false,
        }
    }

    /// Snapshots `data` (stamped with the current last LSN), atomically
    /// publishes it, then truncates the WAL. Returns the LSN the
    /// checkpoint covers and the bytes written.
    pub fn checkpoint(&mut self, mut data: CheckpointData) -> Result<(Lsn, u64)> {
        let covered = Lsn(self.next_lsn.0.saturating_sub(1));
        data.last_lsn = covered;
        let bytes = checkpoint::write(&self.dir.join(CHECKPOINT_FILE), &data)?;
        // Truncation is safe only now: the snapshot is published.
        self.writer.truncate_to_header()?;
        self.ops_since_checkpoint = 0;
        self.metrics.checkpoints += 1;
        self.metrics.last_checkpoint_bytes = bytes;
        self.metrics.checkpoint_lsn = covered.0;
        Ok((covered, bytes))
    }

    /// Forces the WAL to stable storage regardless of the fsync policy.
    pub fn sync(&mut self) -> Result<()> {
        self.writer.sync()
    }

    /// The LSN of the most recent logged mutation (`Lsn(0)` if none yet).
    pub fn last_lsn(&self) -> Lsn {
        Lsn(self.next_lsn.0.saturating_sub(1))
    }

    /// Lifetime counters, with the fsync count and LSN positions sampled
    /// at call time.
    pub fn metrics(&self) -> DurabilityMetrics {
        let mut m = self.metrics;
        m.wal_fsyncs = self.writer.fsyncs();
        m.last_lsn = self.last_lsn().0;
        m
    }

    /// What recovery found when this handle was opened.
    pub fn recovery_report(&self) -> &RecoveryReport {
        &self.report
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The options the store was opened with.
    pub fn options(&self) -> DurabilityOptions {
        self.opts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::RelationSnapshot;
    use qdk_logic::parser::parse_atom;
    use qdk_storage::{Tuple, Value};
    use std::sync::atomic::{AtomicU32, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static N: AtomicU32 = AtomicU32::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("qdk-durable-{tag}-{}-{n}", std::process::id()))
    }

    fn opts() -> DurabilityOptions {
        DurabilityOptions {
            fsync: FsyncPolicy::Never,
            checkpoint_every_ops: Some(3),
        }
    }

    fn fact(text: &str) -> WalOp {
        WalOp::add_fact(&parse_atom(text).unwrap()).unwrap()
    }

    #[test]
    fn fresh_store_opens_empty_then_recovers_appends() {
        let dir = temp_dir("fresh");
        {
            let opened = Durable::open(&dir, opts()).unwrap();
            assert_eq!(opened.report, RecoveryReport::default());
            let mut d = opened.durable;
            assert_eq!(d.append(&fact("edge(a, b)")).unwrap().0, Lsn(1));
            assert_eq!(d.append(&fact("edge(b, c)")).unwrap().0, Lsn(2));
            d.sync().unwrap();
            assert_eq!(d.metrics().wal_appends, 2);
        }
        let opened = Durable::open(&dir, opts()).unwrap();
        assert_eq!(opened.tail.len(), 2);
        assert_eq!(opened.report.replayed, 2);
        assert_eq!(opened.report.last_lsn, Some(Lsn(2)));
        assert_eq!(opened.durable.last_lsn(), Lsn(2));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_truncates_wal_and_lsns_stay_monotonic() {
        let dir = temp_dir("ckp");
        {
            let mut d = Durable::open(&dir, opts()).unwrap().durable;
            d.append(&fact("edge(a, b)")).unwrap();
            d.append(&fact("edge(b, c)")).unwrap();
            d.append(&fact("edge(c, d)")).unwrap();
            assert!(d.should_checkpoint());
            let data = CheckpointData {
                relations: vec![RelationSnapshot {
                    name: "edge".into(),
                    attrs: vec!["from".into(), "to".into()],
                    key: None,
                    facts: vec![
                        Tuple::new(vec![Value::sym("a"), Value::sym("b")]),
                        Tuple::new(vec![Value::sym("b"), Value::sym("c")]),
                        Tuple::new(vec![Value::sym("c"), Value::sym("d")]),
                    ],
                }],
                ..CheckpointData::default()
            };
            let (covered, _) = d.checkpoint(data).unwrap();
            assert_eq!(covered, Lsn(3));
            assert!(!d.should_checkpoint());
            // Post-checkpoint appends continue the LSN sequence.
            assert_eq!(d.append(&fact("edge(d, e)")).unwrap().0, Lsn(4));
            d.sync().unwrap();
        }
        let opened = Durable::open(&dir, opts()).unwrap();
        let ckp = opened.checkpoint.expect("checkpoint should exist");
        assert_eq!(ckp.last_lsn, Lsn(3));
        assert_eq!(ckp.relations[0].facts.len(), 3);
        assert_eq!(opened.tail.len(), 1);
        assert_eq!(opened.tail[0].lsn, Lsn(4));
        assert_eq!(opened.report.checkpointed, 4); // 1 decl + 3 facts
        assert_eq!(opened.durable.last_lsn(), Lsn(4));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn metrics_track_fsyncs_and_checkpoint_lag() {
        let dir = temp_dir("metrics");
        {
            let mut d = Durable::open(
                &dir,
                DurabilityOptions {
                    fsync: FsyncPolicy::Always,
                    checkpoint_every_ops: None,
                },
            )
            .unwrap()
            .durable;
            d.append(&fact("edge(a, b)")).unwrap();
            d.append(&fact("edge(b, c)")).unwrap();
            let m = d.metrics();
            assert_eq!(m.wal_fsyncs, 2); // Always: one per append
            assert_eq!(m.last_lsn, 2);
            assert_eq!(m.checkpoint_lsn, 0);
            assert_eq!(m.checkpoint_lsn_lag(), 2);
            d.checkpoint(CheckpointData::default()).unwrap();
            let m = d.metrics();
            assert_eq!(m.checkpoint_lsn, 2);
            assert_eq!(m.checkpoint_lsn_lag(), 0);
            d.append(&fact("edge(c, d)")).unwrap();
            assert_eq!(d.metrics().checkpoint_lsn_lag(), 1);
        }
        // The checkpoint floor is recovered from disk, so the lag
        // survives a restart.
        let d = Durable::open(
            &dir,
            DurabilityOptions {
                fsync: FsyncPolicy::Always,
                checkpoint_every_ops: None,
            },
        )
        .unwrap()
        .durable;
        let m = d.metrics();
        assert_eq!(m.checkpoint_lsn, 2);
        assert_eq!(m.last_lsn, 3);
        assert_eq!(m.checkpoint_lsn_lag(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_wal_records_below_checkpoint_lsn_are_skipped() {
        // A crash between checkpoint publish and WAL truncate leaves the
        // old records in the log; they must not replay twice.
        let dir = temp_dir("stale");
        {
            let mut d = Durable::open(&dir, opts()).unwrap().durable;
            d.append(&fact("edge(a, b)")).unwrap();
            d.append(&fact("edge(b, c)")).unwrap();
            d.sync().unwrap();
            // Publish a checkpoint covering LSN 2 directly, bypassing the
            // handle so the WAL is left untruncated (the crash window).
            let data = CheckpointData {
                last_lsn: Lsn(2),
                ..CheckpointData::default()
            };
            checkpoint::write(&dir.join(CHECKPOINT_FILE), &data).unwrap();
        }
        let opened = Durable::open(&dir, opts()).unwrap();
        assert_eq!(opened.tail.len(), 0);
        assert_eq!(opened.durable.last_lsn(), Lsn(2));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_reported_and_next_lsn_reuses_torn_slot() {
        let dir = temp_dir("torn");
        {
            let mut d = Durable::open(&dir, opts()).unwrap().durable;
            d.append(&fact("edge(a, b)")).unwrap();
            d.append(&fact("edge(b, c)")).unwrap();
            d.sync().unwrap();
        }
        let wal_path = dir.join(WAL_FILE);
        let bytes = std::fs::read(&wal_path).unwrap();
        std::fs::write(&wal_path, &bytes[..bytes.len() - 4]).unwrap();
        let opened = Durable::open(&dir, opts()).unwrap();
        assert_eq!(opened.tail.len(), 1);
        assert!(opened.report.discarded_tail_bytes > 0);
        assert_eq!(opened.report.last_lsn, Some(Lsn(1)));
        // The torn record's LSN was never acknowledged; it is reassigned.
        let mut d = opened.durable;
        assert_eq!(d.append(&fact("edge(b, c2)")).unwrap().0, Lsn(2));
        std::fs::remove_dir_all(&dir).ok();
    }
}
