//! CRC-32 (IEEE 802.3, the zlib polynomial), table-driven.
//!
//! Self-contained so the durability layer stays dependency-free like the
//! rest of the workspace. The checksum guards every WAL record payload
//! and the checkpoint body against torn writes and bit rot.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// 256-entry lookup table, built once.
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            }
            *slot = c;
        }
        t
    })
}

/// CRC-32 of `bytes` (initial value all-ones, final xor all-ones — the
/// standard zlib/`crc32` convention).
pub fn crc32(bytes: &[u8]) -> u32 {
    let t = table();
    let mut c = u32::MAX;
    for &b in bytes {
        c = t[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ u32::MAX
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn sensitive_to_single_bit_flips() {
        let base = crc32(b"hello wal");
        let mut flipped = b"hello wal".to_vec();
        flipped[3] ^= 0x01;
        assert_ne!(base, crc32(&flipped));
    }
}
