//! The logged operations.
//!
//! One [`WalOp`] per knowledge-base mutation. The set mirrors exactly the
//! mutations `dump()` would have to reproduce: declarations (with their
//! optional key), stored facts, rules, constraints, and retractions.
//! Derived facts and caches are recomputed, never logged.

use crate::codec::{Dec, Enc};
use crate::error::{DurabilityError, Result};
use qdk_logic::{Atom, Constraint, Rule};
use qdk_storage::Tuple;

/// Op kind tags (stable on disk).
const OP_DECLARE: u8 = 0;
const OP_ADD_FACT: u8 = 1;
const OP_ADD_RULE: u8 = 2;
const OP_RETRACT: u8 = 3;
const OP_ADD_CONSTRAINT: u8 = 4;
const OP_BATCH: u8 = 5;

/// A single logged knowledge-base mutation.
#[derive(Clone, Debug, PartialEq)]
pub enum WalOp {
    /// `.decl name(attr, …)` with an optional key prefix length.
    Declare {
        /// Predicate name.
        name: String,
        /// Attribute names, in order.
        attrs: Vec<String>,
        /// Key prefix length, if a key was declared.
        key: Option<usize>,
    },
    /// A ground fact asserted into the EDB.
    AddFact {
        /// Predicate name.
        pred: String,
        /// The stored row.
        tuple: Tuple,
    },
    /// A rule added to the IDB.
    AddRule(Rule),
    /// A ground fact retracted from the EDB.
    Retract {
        /// Predicate name.
        pred: String,
        /// The row to remove.
        tuple: Tuple,
    },
    /// An integrity constraint added to the KB.
    AddConstraint(Constraint),
    /// An atomic batch of mutations committed as one transaction. The
    /// whole batch lives in a single WAL record, so the record-level CRC
    /// makes it all-or-nothing on disk: a torn tail is truncated as a
    /// whole and recovery never replays half a batch.
    Batch(Vec<WalOp>),
}

impl WalOp {
    /// Convenience constructor from a ground atom (fact assertion).
    pub fn add_fact(atom: &Atom) -> Option<WalOp> {
        Some(WalOp::AddFact {
            pred: atom.pred.as_str().to_string(),
            tuple: atom_tuple(atom)?,
        })
    }

    /// Convenience constructor from a ground atom (fact retraction).
    pub fn retract(atom: &Atom) -> Option<WalOp> {
        Some(WalOp::Retract {
            pred: atom.pred.as_str().to_string(),
            tuple: atom_tuple(atom)?,
        })
    }

    /// Encodes the op body into `enc` (tag byte first).
    pub fn encode(&self, enc: &mut Enc) {
        match self {
            WalOp::Declare { name, attrs, key } => {
                enc.byte(OP_DECLARE);
                enc.str(name);
                enc.varint(attrs.len() as u64);
                for a in attrs {
                    enc.str(a);
                }
                match key {
                    None => enc.byte(0),
                    Some(k) => {
                        enc.byte(1);
                        enc.varint(*k as u64);
                    }
                }
            }
            WalOp::AddFact { pred, tuple } => {
                enc.byte(OP_ADD_FACT);
                encode_named_tuple(enc, pred, tuple);
            }
            WalOp::AddRule(rule) => {
                enc.byte(OP_ADD_RULE);
                enc.rule(rule);
            }
            WalOp::Retract { pred, tuple } => {
                enc.byte(OP_RETRACT);
                encode_named_tuple(enc, pred, tuple);
            }
            WalOp::AddConstraint(c) => {
                enc.byte(OP_ADD_CONSTRAINT);
                enc.constraint(c);
            }
            WalOp::Batch(ops) => {
                enc.byte(OP_BATCH);
                enc.varint(ops.len() as u64);
                for op in ops {
                    op.encode(enc);
                }
            }
        }
    }

    /// Decodes one op from `dec`.
    pub fn decode(dec: &mut Dec<'_>) -> Result<WalOp> {
        Ok(match dec.byte()? {
            OP_DECLARE => {
                let name = dec.sym()?.as_str().to_string();
                let n = dec.checked_count()?;
                let mut attrs = Vec::with_capacity(n);
                for _ in 0..n {
                    attrs.push(dec.sym()?.as_str().to_string());
                }
                let key = match dec.byte()? {
                    0 => None,
                    1 => Some(dec.varint()? as usize),
                    tag => {
                        return Err(DurabilityError::Corrupt {
                            what: "encoding",
                            detail: format!("unknown key tag {tag}"),
                        })
                    }
                };
                WalOp::Declare { name, attrs, key }
            }
            OP_ADD_FACT => {
                let (pred, tuple) = decode_named_tuple(dec)?;
                WalOp::AddFact { pred, tuple }
            }
            OP_ADD_RULE => WalOp::AddRule(dec.rule()?),
            OP_RETRACT => {
                let (pred, tuple) = decode_named_tuple(dec)?;
                WalOp::Retract { pred, tuple }
            }
            OP_ADD_CONSTRAINT => WalOp::AddConstraint(dec.constraint()?),
            OP_BATCH => {
                let n = dec.checked_count()?;
                let mut ops = Vec::with_capacity(n);
                for _ in 0..n {
                    ops.push(WalOp::decode(dec)?);
                }
                WalOp::Batch(ops)
            }
            tag => {
                return Err(DurabilityError::Corrupt {
                    what: "encoding",
                    detail: format!("unknown op tag {tag}"),
                })
            }
        })
    }
}

/// Encodes `pred(tuple)` as a name id + value row.
pub(crate) fn encode_named_tuple(enc: &mut Enc, pred: &str, tuple: &Tuple) {
    enc.str(pred);
    enc.varint(tuple.arity() as u64);
    for v in tuple.values() {
        enc.value(v);
    }
}

/// Decodes a name id + value row.
pub(crate) fn decode_named_tuple(dec: &mut Dec<'_>) -> Result<(String, Tuple)> {
    let pred = dec.sym()?.as_str().to_string();
    let n = dec.checked_count()?;
    let mut values = Vec::with_capacity(n);
    for _ in 0..n {
        values.push(dec.value()?);
    }
    Ok((pred, Tuple::new(values)))
}

/// Projects a ground atom onto its stored row; `None` if any argument is a
/// variable (callers validate groundness before logging).
fn atom_tuple(atom: &Atom) -> Option<Tuple> {
    let mut values = Vec::with_capacity(atom.args.len());
    for t in &atom.args {
        match t {
            qdk_logic::Term::Const(c) => values.push(c.clone()),
            qdk_logic::Term::Var(_) => return None,
        }
    }
    Some(Tuple::new(values))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdk_logic::parser::{parse_atom, parse_rule};

    fn roundtrip(op: &WalOp) -> WalOp {
        let mut enc = Enc::new();
        op.encode(&mut enc);
        let bytes = enc.finish();
        let mut dec = Dec::new(&bytes).unwrap();
        let back = WalOp::decode(&mut dec).unwrap();
        dec.expect_end().unwrap();
        back
    }

    #[test]
    fn all_ops_roundtrip() {
        let ops = [
            WalOp::Declare {
                name: "student".into(),
                attrs: vec!["name".into(), "course".into(), "grade".into()],
                key: Some(2),
            },
            WalOp::Declare {
                name: "prereq".into(),
                attrs: vec!["course".into(), "requires".into()],
                key: None,
            },
            WalOp::add_fact(&parse_atom("student(susan, databases, 3.7)").unwrap()).unwrap(),
            WalOp::AddRule(parse_rule("honor(X) :- student(X, Y, Z), Z > 3.5.").unwrap()),
            WalOp::retract(&parse_atom("student(susan, databases, 3.7)").unwrap()).unwrap(),
            WalOp::AddConstraint(Constraint::new(vec![
                parse_atom("foreign(X)").unwrap(),
                parse_atom("unmarried(X)").unwrap(),
            ])),
        ];
        for op in &ops {
            assert_eq!(&roundtrip(op), op);
        }
    }

    #[test]
    fn batches_roundtrip_as_one_record() {
        let batch = WalOp::Batch(vec![
            WalOp::Declare {
                name: "edge".into(),
                attrs: vec!["from".into(), "to".into()],
                key: None,
            },
            WalOp::add_fact(&parse_atom("edge(a, b)").unwrap()).unwrap(),
            WalOp::retract(&parse_atom("edge(a, b)").unwrap()).unwrap(),
            WalOp::AddRule(parse_rule("path(X, Y) :- edge(X, Y).").unwrap()),
        ]);
        assert_eq!(roundtrip(&batch), batch);
        // Empty batches are legal (a committed transaction that logged
        // nothing encodes to nothing at apply time).
        let empty = WalOp::Batch(Vec::new());
        assert_eq!(roundtrip(&empty), empty);
    }

    #[test]
    fn non_ground_atoms_refuse_projection() {
        assert_eq!(
            WalOp::add_fact(&parse_atom("student(X, db, 3.0)").unwrap()),
            None
        );
        assert_eq!(
            WalOp::retract(&parse_atom("student(X, db, 3.0)").unwrap()),
            None
        );
    }
}
