//! The append-only write-ahead log.
//!
//! File layout:
//!
//! ```text
//! [8-byte magic "QDKWAL01"]
//! record*   where record = [u32 le: payload len][u32 le: crc32(payload)][payload]
//! ```
//!
//! and `payload = [symbol table][varint lsn][op body]` — each record is
//! self-contained (its own string table), so the tail can be replayed
//! with no state beyond the file itself.
//!
//! The reader scans until the first frame that is short, over-long or
//! fails its CRC, then stops: everything before that point is replayed,
//! everything after is the *torn tail* a crash mid-append leaves behind.
//! The torn bytes are counted in the [`RecoveryReport`], never raised as
//! an error and never a panic — a crashed append is an expected state,
//! not corruption of history.

use crate::codec::{Dec, Enc};
use crate::crc32::crc32;
use crate::error::{DurabilityError, Result};
use crate::op::WalOp;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Magic bytes opening every WAL file (name + format version).
pub const WAL_MAGIC: &[u8; 8] = b"QDKWAL01";

/// A log sequence number: the position of a mutation in the total order
/// of the knowledge base's history. Monotonic across checkpoints and WAL
/// truncations — a checkpoint records the last LSN it covers.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lsn(pub u64);

impl std::fmt::Display for Lsn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lsn:{}", self.0)
    }
}

/// What recovery found and did, surfaced through
/// [`Session::recovery_report`](../qdk/struct.Session.html) and the obs
/// layer so operators can see a crash was healed.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Ops restored from the checkpoint snapshot (declarations + facts +
    /// rules + constraints), 0 when no checkpoint existed.
    pub checkpointed: u64,
    /// WAL tail records replayed after the checkpoint.
    pub replayed: u64,
    /// Bytes of torn/corrupt tail discarded from the end of the WAL.
    pub discarded_tail_bytes: u64,
    /// The LSN the knowledge base resumed at.
    pub last_lsn: Option<Lsn>,
}

/// One decoded WAL record.
#[derive(Clone, Debug, PartialEq)]
pub struct WalRecord {
    /// The record's log sequence number.
    pub lsn: Lsn,
    /// The logged mutation.
    pub op: WalOp,
}

/// Serializes one record payload: `[varint lsn][table][op body]`.
pub fn encode_record(lsn: Lsn, op: &WalOp) -> Vec<u8> {
    let mut enc = Enc::new();
    enc.varint(lsn.0);
    op.encode(&mut enc);
    enc.finish()
}

fn decode_record(payload: &[u8]) -> Result<WalRecord> {
    let mut dec = Dec::new(payload)?;
    let lsn = Lsn(dec.varint()?);
    let op = WalOp::decode(&mut dec)?;
    dec.expect_end()?;
    Ok(WalRecord { lsn, op })
}

/// How eagerly appends reach stable storage.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` after every record. Slowest, loses nothing on power loss.
    #[default]
    Always,
    /// `fsync` every N records (and on checkpoint/close). A crash can
    /// lose up to the last N−1 acknowledged mutations.
    EveryN(u32),
    /// Never `fsync` explicitly; the OS flushes when it pleases. For
    /// tests and bulk loads.
    Never,
}

/// The appender half of the WAL: an open file handle plus the fsync
/// policy and the count of records since the last sync.
#[derive(Debug)]
pub struct WalWriter {
    path: PathBuf,
    file: File,
    policy: FsyncPolicy,
    unsynced: u32,
    fsyncs: u64,
}

impl WalWriter {
    /// Opens (creating if absent) the WAL at `path` for appending. A new
    /// file gets the magic header; an existing file must start with it.
    pub fn open(path: &Path, policy: FsyncPolicy) -> Result<WalWriter> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
            .map_err(|e| DurabilityError::io("open wal", path, &e))?;
        let len = file
            .metadata()
            .map_err(|e| DurabilityError::io("stat wal", path, &e))?
            .len();
        if len == 0 {
            file.write_all(WAL_MAGIC)
                .map_err(|e| DurabilityError::io("write wal header", path, &e))?;
            file.sync_all()
                .map_err(|e| DurabilityError::io("sync wal header", path, &e))?;
        } else {
            let mut magic = [0u8; 8];
            file.read_exact(&mut magic)
                .map_err(|e| DurabilityError::io("read wal header", path, &e))?;
            if &magic != WAL_MAGIC {
                return Err(DurabilityError::Corrupt {
                    what: "wal header",
                    detail: format!("bad magic {magic:02x?}"),
                });
            }
        }
        file.seek(SeekFrom::End(0))
            .map_err(|e| DurabilityError::io("seek wal", path, &e))?;
        Ok(WalWriter {
            path: path.to_path_buf(),
            file,
            policy,
            unsynced: 0,
            fsyncs: 0,
        })
    }

    /// Appends one record and applies the fsync policy. Returns the bytes
    /// written (frame + payload) so callers can meter log growth.
    pub fn append(&mut self, lsn: Lsn, op: &WalOp) -> Result<u64> {
        let payload = encode_record(lsn, op);
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        self.file
            .write_all(&frame)
            .map_err(|e| DurabilityError::io("append wal", &self.path, &e))?;
        self.unsynced += 1;
        let should_sync = match self.policy {
            FsyncPolicy::Always => true,
            FsyncPolicy::EveryN(n) => self.unsynced >= n.max(1),
            FsyncPolicy::Never => false,
        };
        if should_sync {
            self.sync()?;
        }
        Ok(frame.len() as u64)
    }

    /// Forces everything appended so far to stable storage.
    pub fn sync(&mut self) -> Result<()> {
        self.file
            .sync_all()
            .map_err(|e| DurabilityError::io("sync wal", &self.path, &e))?;
        self.unsynced = 0;
        self.fsyncs += 1;
        Ok(())
    }

    /// How many fsyncs this writer has issued since open (policy-driven,
    /// explicit, and truncation syncs alike).
    pub fn fsyncs(&self) -> u64 {
        self.fsyncs
    }

    /// Discards every record (after a checkpoint has made them
    /// redundant), leaving just the magic header.
    pub fn truncate_to_header(&mut self) -> Result<()> {
        self.file
            .set_len(WAL_MAGIC.len() as u64)
            .map_err(|e| DurabilityError::io("truncate wal", &self.path, &e))?;
        self.file
            .seek(SeekFrom::End(0))
            .map_err(|e| DurabilityError::io("seek wal", &self.path, &e))?;
        self.file
            .sync_all()
            .map_err(|e| DurabilityError::io("sync wal", &self.path, &e))?;
        self.unsynced = 0;
        self.fsyncs += 1;
        Ok(())
    }
}

/// The outcome of scanning a WAL file.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct WalScan {
    /// Every record up to the first torn/corrupt frame, in log order.
    pub records: Vec<WalRecord>,
    /// Bytes from the first bad frame to end-of-file (0 for a clean log).
    pub discarded_tail_bytes: u64,
    /// File length up to and including the last intact record (i.e. where
    /// the torn tail starts). Recovery truncates the file here before new
    /// appends, so fresh records are never written after garbage the
    /// scanner would stop at.
    pub valid_len: u64,
}

/// Reads every intact record from the WAL at `path`.
///
/// A missing file is an empty log. A file that exists but lacks the
/// 8-byte magic is corrupt (that is damage to *history*, not a torn
/// append) — except a short file under 8 bytes, which is the torn
/// remnant of header creation and scans as empty.
pub fn scan(path: &Path) -> Result<WalScan> {
    let mut bytes = Vec::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_end(&mut bytes)
                .map_err(|e| DurabilityError::io("read wal", path, &e))?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(WalScan::default()),
        Err(e) => return Err(DurabilityError::io("open wal", path, &e)),
    }
    if bytes.len() < WAL_MAGIC.len() {
        return Ok(WalScan {
            records: Vec::new(),
            discarded_tail_bytes: bytes.len() as u64,
            valid_len: 0,
        });
    }
    if &bytes[..8] != WAL_MAGIC {
        return Err(DurabilityError::Corrupt {
            what: "wal header",
            detail: format!("bad magic {:02x?}", &bytes[..8]),
        });
    }
    let mut records = Vec::new();
    let mut pos = WAL_MAGIC.len();
    while pos < bytes.len() {
        let start = pos;
        if bytes.len() - pos < 8 {
            break; // torn frame header
        }
        let len = u32::from_le_bytes([bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]])
            as usize;
        let want = u32::from_le_bytes([
            bytes[pos + 4],
            bytes[pos + 5],
            bytes[pos + 6],
            bytes[pos + 7],
        ]);
        pos += 8;
        if bytes.len() - pos < len {
            pos = start;
            break; // torn payload
        }
        let payload = &bytes[pos..pos + len];
        if crc32(payload) != want {
            pos = start;
            break; // flipped bits or a reused frame slot
        }
        match decode_record(payload) {
            Ok(rec) => records.push(rec),
            Err(_) => {
                // CRC passed but the payload doesn't decode: treat like a
                // torn tail rather than failing recovery outright.
                pos = start;
                break;
            }
        }
        pos += len;
    }
    Ok(WalScan {
        records,
        discarded_tail_bytes: (bytes.len() - pos) as u64,
        valid_len: pos as u64,
    })
}

/// Chops the file at `path` down to `len` bytes (recovery's removal of a
/// torn tail; a `len` of 0 removes a header-less remnant entirely so the
/// next open rewrites the magic).
pub fn truncate_to(path: &Path, len: u64) -> Result<()> {
    let file = OpenOptions::new()
        .write(true)
        .open(path)
        .map_err(|e| DurabilityError::io("open wal", path, &e))?;
    file.set_len(len)
        .map_err(|e| DurabilityError::io("truncate wal", path, &e))?;
    file.sync_all()
        .map_err(|e| DurabilityError::io("sync wal", path, &e))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdk_logic::parser::parse_atom;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn temp_wal(tag: &str) -> PathBuf {
        static N: AtomicU32 = AtomicU32::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("qdk-wal-{tag}-{}-{n}.wal", std::process::id()))
    }

    fn sample_ops() -> Vec<WalOp> {
        vec![
            WalOp::Declare {
                name: "edge".into(),
                attrs: vec!["from".into(), "to".into()],
                key: None,
            },
            WalOp::add_fact(&parse_atom("edge(a, b)").unwrap()).unwrap(),
            WalOp::add_fact(&parse_atom("edge(b, c)").unwrap()).unwrap(),
            WalOp::retract(&parse_atom("edge(a, b)").unwrap()).unwrap(),
        ]
    }

    #[test]
    fn append_scan_roundtrip() {
        let path = temp_wal("roundtrip");
        let mut w = WalWriter::open(&path, FsyncPolicy::Never).unwrap();
        for (i, op) in sample_ops().iter().enumerate() {
            w.append(Lsn(i as u64 + 1), op).unwrap();
        }
        w.sync().unwrap();
        let scan = scan(&path).unwrap();
        assert_eq!(scan.discarded_tail_bytes, 0);
        assert_eq!(scan.records.len(), 4);
        assert_eq!(scan.records[0].lsn, Lsn(1));
        assert_eq!(scan.records[3].lsn, Lsn(4));
        assert_eq!(scan.records[1].op, sample_ops()[1]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reopen_appends_after_existing_records() {
        let path = temp_wal("reopen");
        {
            let mut w = WalWriter::open(&path, FsyncPolicy::Always).unwrap();
            w.append(Lsn(1), &sample_ops()[0]).unwrap();
        }
        {
            let mut w = WalWriter::open(&path, FsyncPolicy::Always).unwrap();
            w.append(Lsn(2), &sample_ops()[1]).unwrap();
        }
        let scan = scan(&path).unwrap();
        assert_eq!(scan.records.len(), 2);
        assert_eq!(scan.records[1].lsn, Lsn(2));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_discarded_not_fatal() {
        let path = temp_wal("torn");
        let mut w = WalWriter::open(&path, FsyncPolicy::Never).unwrap();
        for (i, op) in sample_ops().iter().enumerate() {
            w.append(Lsn(i as u64 + 1), op).unwrap();
        }
        w.sync().unwrap();
        drop(w);
        // Chop 3 bytes off the final record: a torn append.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        let scan = scan(&path).unwrap();
        assert_eq!(scan.records.len(), 3);
        assert!(scan.discarded_tail_bytes > 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn flipped_bit_stops_scan_at_prior_record() {
        let path = temp_wal("flip");
        let mut w = WalWriter::open(&path, FsyncPolicy::Never).unwrap();
        for (i, op) in sample_ops().iter().enumerate() {
            w.append(Lsn(i as u64 + 1), op).unwrap();
        }
        w.sync().unwrap();
        drop(w);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 2;
        bytes[last] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let scan = scan(&path).unwrap();
        assert_eq!(scan.records.len(), 3);
        assert!(scan.discarded_tail_bytes > 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncate_to_header_empties_log_and_preserves_magic() {
        let path = temp_wal("trunc");
        let mut w = WalWriter::open(&path, FsyncPolicy::Never).unwrap();
        w.append(Lsn(1), &sample_ops()[0]).unwrap();
        w.truncate_to_header().unwrap();
        w.append(Lsn(2), &sample_ops()[1]).unwrap();
        w.sync().unwrap();
        let scan = scan(&path).unwrap();
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.records[0].lsn, Lsn(2));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_scans_empty_but_bad_magic_is_corrupt() {
        let missing = temp_wal("missing");
        assert_eq!(scan(&missing).unwrap(), WalScan::default());
        let bad = temp_wal("badmagic");
        std::fs::write(&bad, b"NOTAWAL0rest").unwrap();
        assert!(matches!(
            scan(&bad),
            Err(DurabilityError::Corrupt {
                what: "wal header",
                ..
            })
        ));
        std::fs::remove_file(&bad).ok();
    }
}
