//! Checkpoint snapshots.
//!
//! A checkpoint is the full declared state of the knowledge base — the
//! schemas (with key declarations), every stored fact in per-relation
//! insertion order, the rules, and the integrity constraints — plus the
//! LSN of the last mutation it covers. After a checkpoint lands, the WAL
//! records at or below that LSN are redundant and the log is truncated.
//!
//! File layout:
//!
//! ```text
//! [8-byte magic "QDKCKP01"][u32 le: crc32(body)][body]
//! ```
//!
//! with one whole-file symbol table inside the body, so a million-fact
//! snapshot writes each fact as a few varint ids.
//!
//! The write is atomic: body → temp file in the same directory → fsync →
//! rename over the target → fsync the directory (on unix). Readers
//! either see the previous complete checkpoint or the new one, never a
//! half-written hybrid; a checkpoint that fails its CRC is ignored (with
//! the WAL intact, recovery falls back to pure replay only if the
//! checkpoint never existed — a *damaged* checkpoint is an error, since
//! the truncated WAL no longer holds the history it covered).

use crate::codec::{Dec, Enc};
use crate::crc32::crc32;
use crate::error::{DurabilityError, Result};
use crate::op::{decode_named_tuple, encode_named_tuple};
use crate::wal::Lsn;
use qdk_logic::{Constraint, Rule};
use qdk_storage::Tuple;
use std::fs::File;
use std::io::{Read, Write};
use std::path::Path;

/// Magic bytes opening every checkpoint file (name + format version).
pub const CHECKPOINT_MAGIC: &[u8; 8] = b"QDKCKP01";

/// One declared relation in a snapshot.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RelationSnapshot {
    /// Predicate name.
    pub name: String,
    /// Attribute names, in order.
    pub attrs: Vec<String>,
    /// Key prefix length, if declared.
    pub key: Option<usize>,
    /// Stored rows in insertion order (order matters: fact ids, delta
    /// windows and therefore diagnostics replay identically).
    pub facts: Vec<Tuple>,
}

/// The full declared state of a knowledge base at one LSN.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CheckpointData {
    /// The last LSN this snapshot covers; replay resumes after it.
    pub last_lsn: Lsn,
    /// Declared relations with their stored facts, in declaration order.
    pub relations: Vec<RelationSnapshot>,
    /// IDB rules in insertion order.
    pub rules: Vec<Rule>,
    /// Integrity constraints in insertion order.
    pub constraints: Vec<Constraint>,
}

impl CheckpointData {
    /// Ops this snapshot stands for (declarations + facts + rules +
    /// constraints) — recovery-report accounting.
    pub fn op_count(&self) -> u64 {
        let facts: usize = self.relations.iter().map(|r| r.facts.len()).sum();
        (self.relations.len() + facts + self.rules.len() + self.constraints.len()) as u64
    }

    fn encode(&self) -> Vec<u8> {
        let mut enc = Enc::new();
        enc.varint(self.last_lsn.0);
        enc.varint(self.relations.len() as u64);
        for rel in &self.relations {
            enc.str(&rel.name);
            enc.varint(rel.attrs.len() as u64);
            for a in &rel.attrs {
                enc.str(a);
            }
            match rel.key {
                None => enc.byte(0),
                Some(k) => {
                    enc.byte(1);
                    enc.varint(k as u64);
                }
            }
            enc.varint(rel.facts.len() as u64);
            for t in &rel.facts {
                encode_named_tuple(&mut enc, &rel.name, t);
            }
        }
        enc.varint(self.rules.len() as u64);
        for r in &self.rules {
            enc.rule(r);
        }
        enc.varint(self.constraints.len() as u64);
        for c in &self.constraints {
            enc.constraint(c);
        }
        enc.finish()
    }

    fn decode(body: &[u8]) -> Result<CheckpointData> {
        let corrupt = |detail: String| DurabilityError::Corrupt {
            what: "checkpoint",
            detail,
        };
        let mut dec = Dec::new(body)?;
        let last_lsn = Lsn(dec.varint()?);
        let nrel = dec.checked_count()?;
        let mut relations = Vec::with_capacity(nrel);
        for _ in 0..nrel {
            let name = dec.sym()?.as_str().to_string();
            let nattr = dec.checked_count()?;
            let mut attrs = Vec::with_capacity(nattr);
            for _ in 0..nattr {
                attrs.push(dec.sym()?.as_str().to_string());
            }
            let key = match dec.byte()? {
                0 => None,
                1 => Some(dec.varint()? as usize),
                tag => return Err(corrupt(format!("unknown key tag {tag}"))),
            };
            let nfacts = dec.checked_count()?;
            let mut facts = Vec::with_capacity(nfacts);
            for _ in 0..nfacts {
                let (pred, tuple) = decode_named_tuple(&mut dec)?;
                if pred != name {
                    return Err(corrupt(format!("fact for {pred} inside relation {name}")));
                }
                facts.push(tuple);
            }
            relations.push(RelationSnapshot {
                name,
                attrs,
                key,
                facts,
            });
        }
        let nrules = dec.checked_count()?;
        let mut rules = Vec::with_capacity(nrules);
        for _ in 0..nrules {
            rules.push(dec.rule()?);
        }
        let ncons = dec.checked_count()?;
        let mut constraints = Vec::with_capacity(ncons);
        for _ in 0..ncons {
            constraints.push(dec.constraint()?);
        }
        dec.expect_end()?;
        Ok(CheckpointData {
            last_lsn,
            relations,
            rules,
            constraints,
        })
    }
}

/// Atomically writes `data` to `path`. Returns the bytes written.
pub fn write(path: &Path, data: &CheckpointData) -> Result<u64> {
    let body = data.encode();
    let mut bytes = Vec::with_capacity(12 + body.len());
    bytes.extend_from_slice(CHECKPOINT_MAGIC);
    bytes.extend_from_slice(&crc32(&body).to_le_bytes());
    bytes.extend_from_slice(&body);

    let tmp = path.with_extension("tmp");
    {
        let mut f =
            File::create(&tmp).map_err(|e| DurabilityError::io("create checkpoint", &tmp, &e))?;
        f.write_all(&bytes)
            .map_err(|e| DurabilityError::io("write checkpoint", &tmp, &e))?;
        f.sync_all()
            .map_err(|e| DurabilityError::io("sync checkpoint", &tmp, &e))?;
    }
    std::fs::rename(&tmp, path).map_err(|e| DurabilityError::io("publish checkpoint", path, &e))?;
    sync_parent_dir(path)?;
    Ok(bytes.len() as u64)
}

/// Makes the rename itself durable by syncing the containing directory
/// (a no-op on platforms where directories can't be opened).
fn sync_parent_dir(path: &Path) -> Result<()> {
    #[cfg(unix)]
    if let Some(dir) = path.parent() {
        let d = File::open(dir).map_err(|e| DurabilityError::io("open dir", dir, &e))?;
        d.sync_all()
            .map_err(|e| DurabilityError::io("sync dir", dir, &e))?;
    }
    Ok(())
}

/// Reads the checkpoint at `path`. `Ok(None)` if the file does not exist;
/// an existing but invalid file is [`DurabilityError::Corrupt`] (the WAL
/// was truncated when it was written, so its contents are irreplaceable).
pub fn read(path: &Path) -> Result<Option<CheckpointData>> {
    let mut bytes = Vec::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_end(&mut bytes)
                .map_err(|e| DurabilityError::io("read checkpoint", path, &e))?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(DurabilityError::io("open checkpoint", path, &e)),
    }
    let corrupt = |detail: String| DurabilityError::Corrupt {
        what: "checkpoint",
        detail,
    };
    if bytes.len() < 12 {
        return Err(corrupt(format!("{} bytes is too short", bytes.len())));
    }
    if &bytes[..8] != CHECKPOINT_MAGIC {
        return Err(corrupt(format!("bad magic {:02x?}", &bytes[..8])));
    }
    let want = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]);
    let body = &bytes[12..];
    if crc32(body) != want {
        return Err(corrupt("body checksum mismatch".into()));
    }
    CheckpointData::decode(body).map(Some)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdk_logic::parser::parse_rule;
    use qdk_storage::Value;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn temp_ckp(tag: &str) -> PathBuf {
        static N: AtomicU32 = AtomicU32::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("qdk-ckp-{tag}-{}-{n}.ckp", std::process::id()))
    }

    fn sample() -> CheckpointData {
        CheckpointData {
            last_lsn: Lsn(42),
            relations: vec![RelationSnapshot {
                name: "edge".into(),
                attrs: vec!["from".into(), "to".into()],
                key: Some(2),
                facts: vec![
                    Tuple::new(vec![Value::sym("a"), Value::sym("b")]),
                    Tuple::new(vec![Value::sym("b"), Value::sym("c")]),
                ],
            }],
            rules: vec![parse_rule("path(X, Y) :- edge(X, Y).").unwrap()],
            constraints: vec![],
        }
    }

    #[test]
    fn write_read_roundtrip() {
        let path = temp_ckp("roundtrip");
        let data = sample();
        write(&path, &data).unwrap();
        assert_eq!(read(&path).unwrap(), Some(data));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_reads_none() {
        assert_eq!(read(&temp_ckp("missing")).unwrap(), None);
    }

    #[test]
    fn corrupted_body_is_an_error_not_a_panic() {
        let path = temp_ckp("corrupt");
        write(&path, &sample()).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read(&path),
            Err(DurabilityError::Corrupt {
                what: "checkpoint",
                ..
            })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rewrite_replaces_previous_snapshot() {
        let path = temp_ckp("rewrite");
        write(&path, &sample()).unwrap();
        let mut next = sample();
        next.last_lsn = Lsn(99);
        next.relations[0]
            .facts
            .push(Tuple::new(vec![Value::sym("c"), Value::sym("d")]));
        write(&path, &next).unwrap();
        assert_eq!(read(&path).unwrap(), Some(next));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn op_count_sums_all_state() {
        // 1 declaration + 2 facts + 1 rule + 0 constraints.
        assert_eq!(sample().op_count(), 4);
    }
}
