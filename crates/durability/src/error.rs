//! Durability-layer errors.
//!
//! I/O failures carry the failing operation and path as plain strings so
//! the error type stays `Clone + PartialEq` like every other error in the
//! workspace (callers compare errors in tests; `std::io::Error` is
//! neither).

use std::fmt;

/// Errors raised by the write-ahead log, checkpointing and recovery.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DurabilityError {
    /// An operating-system I/O failure.
    Io {
        /// What was being attempted (`"open wal"`, `"append"`, …).
        op: &'static str,
        /// The file or directory involved.
        path: String,
        /// The OS error, rendered.
        message: String,
    },
    /// A persistent file exists but its contents are not valid — wrong
    /// magic, unsupported version, or a checksum mismatch *before* the
    /// tolerated torn tail (a torn tail is reported, not raised).
    Corrupt {
        /// Which artifact is damaged (`"wal header"`, `"checkpoint"`, …).
        what: &'static str,
        /// Detail for diagnostics.
        detail: String,
    },
}

impl DurabilityError {
    /// Wraps an `io::Error` with its context.
    pub fn io(op: &'static str, path: &std::path::Path, e: &std::io::Error) -> Self {
        DurabilityError::Io {
            op,
            path: path.display().to_string(),
            message: e.to_string(),
        }
    }
}

impl fmt::Display for DurabilityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurabilityError::Io { op, path, message } => {
                write!(f, "durability i/o error ({op} {path}): {message}")
            }
            DurabilityError::Corrupt { what, detail } => {
                write!(f, "corrupt {what}: {detail}")
            }
        }
    }
}

impl std::error::Error for DurabilityError {}

/// Result alias for durability operations.
pub type Result<T> = std::result::Result<T, DurabilityError>;
