//! Compact binary encoding for logged operations and checkpoint bodies.
//!
//! Strings (predicate names, symbolic constants, variable names, quoted
//! strings) are written once into a dense symbol table — the same
//! interning scheme the compiled query core uses ([`Interner`], dense
//! `u32` ids) — and referenced by id everywhere else. A WAL record
//! carries its own small table (records must be self-contained so the
//! tail can be replayed without any other state); a checkpoint carries
//! one table for the whole snapshot, which is what makes million-fact
//! snapshots compact: each fact is a handful of varint ids.
//!
//! Integers are LEB128 varints (signed values zigzag-encoded), floats are
//! `f64::to_bits` little-endian. Every decode is bounds-checked and
//! returns [`DurabilityError::Corrupt`] on malformed input — decoding
//! never panics, whatever the bytes.

use crate::error::{DurabilityError, Result};
use qdk_logic::{Atom, Constraint, Interner, Literal, Rule, Sym, Term, Var};
use qdk_storage::Value;

/// Value kind tags (stable on disk — bump the format version to change).
const TAG_SYM: u8 = 0;
const TAG_INT: u8 = 1;
const TAG_NUM: u8 = 2;
const TAG_STR: u8 = 3;
const TAG_BOOL: u8 = 4;

/// Term kind tags.
const TAG_VAR: u8 = 0;
const TAG_CONST: u8 = 1;

fn corrupt(detail: impl Into<String>) -> DurabilityError {
    DurabilityError::Corrupt {
        what: "encoding",
        detail: detail.into(),
    }
}

/// Encoder: a body buffer plus the symbol table it references. Call the
/// typed writers, then [`Enc::finish`] to assemble `[table][body]`.
#[derive(Default)]
pub struct Enc {
    body: Vec<u8>,
    syms: Interner,
}

impl Enc {
    /// Fresh encoder with an empty table.
    pub fn new() -> Self {
        Enc::default()
    }

    /// Appends an unsigned LEB128 varint.
    pub fn varint(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7F) as u8;
            v >>= 7;
            if v == 0 {
                self.body.push(byte);
                return;
            }
            self.body.push(byte | 0x80);
        }
    }

    /// Appends a zigzag-encoded signed varint.
    pub fn zigzag(&mut self, v: i64) {
        self.varint(((v << 1) ^ (v >> 63)) as u64);
    }

    /// Appends one raw byte.
    pub fn byte(&mut self, b: u8) {
        self.body.push(b);
    }

    /// Appends an `f64` as its 8 little-endian bit bytes.
    pub fn f64(&mut self, v: f64) {
        self.body.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Appends a symbol as its dense table id.
    pub fn sym(&mut self, s: &Sym) {
        let id = self.syms.intern(s);
        self.varint(u64::from(id.0));
    }

    /// Appends a string slice as its dense table id.
    pub fn str(&mut self, s: &str) {
        let id = self.syms.intern_str(s);
        self.varint(u64::from(id.0));
    }

    /// Appends a stored value.
    pub fn value(&mut self, v: &Value) {
        match v {
            Value::Sym(s) => {
                self.byte(TAG_SYM);
                self.sym(s);
            }
            Value::Int(i) => {
                self.byte(TAG_INT);
                self.zigzag(*i);
            }
            Value::Num(n) => {
                self.byte(TAG_NUM);
                self.f64(*n);
            }
            Value::Str(s) => {
                self.byte(TAG_STR);
                self.sym(s);
            }
            Value::Bool(b) => {
                self.byte(TAG_BOOL);
                self.byte(u8::from(*b));
            }
        }
    }

    /// Appends a term (variable names intern like any other symbol).
    pub fn term(&mut self, t: &Term) {
        match t {
            Term::Var(Var(name)) => {
                self.byte(TAG_VAR);
                self.sym(name);
            }
            Term::Const(c) => {
                self.byte(TAG_CONST);
                self.value(c);
            }
        }
    }

    /// Appends an atom: predicate id, arity, args.
    pub fn atom(&mut self, a: &Atom) {
        self.sym(&a.pred);
        self.varint(a.args.len() as u64);
        for t in &a.args {
            self.term(t);
        }
    }

    /// Appends a body literal (polarity byte + atom).
    pub fn literal(&mut self, l: &Literal) {
        self.byte(u8::from(l.positive));
        self.atom(&l.atom);
    }

    /// Appends a rule: head atom, body length, literals.
    pub fn rule(&mut self, r: &Rule) {
        self.atom(&r.head);
        self.varint(r.body.len() as u64);
        for l in &r.body {
            self.literal(l);
        }
    }

    /// Appends an integrity constraint (its forbidden conjunction).
    pub fn constraint(&mut self, c: &Constraint) {
        self.varint(c.body.len() as u64);
        for a in &c.body {
            self.atom(a);
        }
    }

    /// Assembles the final bytes: `[varint table len][strings…][body]`,
    /// each string `[varint byte len][utf8 bytes]`.
    pub fn finish(self) -> Vec<u8> {
        let mut head = Enc::new();
        head.varint(self.syms.len() as u64);
        let mut out = head.body;
        for i in 0..self.syms.len() {
            let s = self
                .syms
                .resolve(qdk_logic::SymId(i as u32))
                .as_str()
                .as_bytes();
            let mut len = Enc::new();
            len.varint(s.len() as u64);
            out.extend_from_slice(&len.body);
            out.extend_from_slice(s);
        }
        out.extend_from_slice(&self.body);
        out
    }
}

/// Decoder over an encoded `[table][body]` slice. Construction reads the
/// symbol table; the typed readers then consume the body.
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
    syms: Vec<Sym>,
}

impl<'a> Dec<'a> {
    /// Reads the symbol table and positions the cursor at the body.
    pub fn new(buf: &'a [u8]) -> Result<Self> {
        let mut d = Dec {
            buf,
            pos: 0,
            syms: Vec::new(),
        };
        let count = d.varint()?;
        // Each table entry needs at least one byte; a count beyond the
        // remaining bytes is corruption, not a reason to allocate.
        if count > (buf.len() - d.pos) as u64 {
            return Err(corrupt(format!("symbol table claims {count} entries")));
        }
        for _ in 0..count {
            let len = d.varint()? as usize;
            let bytes = d.take(len)?;
            let text = std::str::from_utf8(bytes)
                .map_err(|_| corrupt("symbol table entry is not utf-8"))?;
            d.syms.push(Sym::new(text));
        }
        Ok(d)
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fails unless every byte was consumed (trailing garbage in a
    /// checksummed record means the encoder and decoder disagree).
    pub fn expect_end(&self) -> Result<()> {
        if self.remaining() != 0 {
            return Err(corrupt(format!("{} trailing bytes", self.remaining())));
        }
        Ok(())
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(corrupt("unexpected end of input"));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one raw byte.
    pub fn byte(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads an unsigned LEB128 varint.
    pub fn varint(&mut self) -> Result<u64> {
        let mut v: u64 = 0;
        for shift in (0..64).step_by(7) {
            let b = self.byte()?;
            v |= u64::from(b & 0x7F) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(corrupt("varint longer than 10 bytes"))
    }

    /// Reads a zigzag-encoded signed varint.
    pub fn zigzag(&mut self) -> Result<i64> {
        let v = self.varint()?;
        Ok(((v >> 1) as i64) ^ -((v & 1) as i64))
    }

    /// Reads an `f64` from its 8 little-endian bit bytes.
    pub fn f64(&mut self) -> Result<f64> {
        let bytes = self.take(8)?;
        let mut arr = [0u8; 8];
        arr.copy_from_slice(bytes);
        Ok(f64::from_bits(u64::from_le_bytes(arr)))
    }

    /// Resolves a table id read from the body.
    pub fn sym(&mut self) -> Result<Sym> {
        let id = self.varint()? as usize;
        self.syms
            .get(id)
            .cloned()
            .ok_or_else(|| corrupt(format!("symbol id {id} out of table range")))
    }

    /// Reads a stored value.
    pub fn value(&mut self) -> Result<Value> {
        Ok(match self.byte()? {
            TAG_SYM => Value::Sym(self.sym()?),
            TAG_INT => Value::Int(self.zigzag()?),
            TAG_NUM => Value::Num(self.f64()?),
            TAG_STR => Value::Str(self.sym()?),
            TAG_BOOL => Value::Bool(self.byte()? != 0),
            tag => return Err(corrupt(format!("unknown value tag {tag}"))),
        })
    }

    /// Reads a term.
    pub fn term(&mut self) -> Result<Term> {
        Ok(match self.byte()? {
            TAG_VAR => Term::Var(Var(self.sym()?)),
            TAG_CONST => Term::Const(self.value()?),
            tag => return Err(corrupt(format!("unknown term tag {tag}"))),
        })
    }

    /// Reads an atom.
    pub fn atom(&mut self) -> Result<Atom> {
        let pred = self.sym()?;
        let argc = self.checked_count()?;
        let mut args = Vec::with_capacity(argc);
        for _ in 0..argc {
            args.push(self.term()?);
        }
        Ok(Atom { pred, args })
    }

    /// Reads a body literal.
    pub fn literal(&mut self) -> Result<Literal> {
        let positive = self.byte()? != 0;
        let atom = self.atom()?;
        Ok(Literal { positive, atom })
    }

    /// Reads a rule.
    pub fn rule(&mut self) -> Result<Rule> {
        let head = self.atom()?;
        let n = self.checked_count()?;
        let mut body = Vec::with_capacity(n);
        for _ in 0..n {
            body.push(self.literal()?);
        }
        Ok(Rule { head, body })
    }

    /// Reads an integrity constraint.
    pub fn constraint(&mut self) -> Result<Constraint> {
        let n = self.checked_count()?;
        let mut body = Vec::with_capacity(n);
        for _ in 0..n {
            body.push(self.atom()?);
        }
        Ok(Constraint::new(body))
    }

    /// A collection count, validated against the remaining bytes (every
    /// element costs at least one byte) so corrupt input can't demand an
    /// absurd allocation.
    pub fn checked_count(&mut self) -> Result<usize> {
        let n = self.varint()?;
        if n > self.remaining() as u64 {
            return Err(corrupt(format!("count {n} exceeds remaining input")));
        }
        Ok(n as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdk_logic::parser::{parse_atom, parse_rule};

    #[test]
    fn varint_roundtrip_boundaries() {
        for v in [0u64, 1, 127, 128, 300, u64::from(u32::MAX), u64::MAX] {
            let mut e = Enc::new();
            e.varint(v);
            let bytes = e.finish();
            let mut d = Dec::new(&bytes).unwrap();
            assert_eq!(d.varint().unwrap(), v);
            d.expect_end().unwrap();
        }
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [0i64, -1, 1, -64, 64, i64::MIN, i64::MAX] {
            let mut e = Enc::new();
            e.zigzag(v);
            let bytes = e.finish();
            assert_eq!(Dec::new(&bytes).unwrap().zigzag().unwrap(), v);
        }
    }

    #[test]
    fn value_roundtrip_all_kinds() {
        let values = [
            Value::sym("databases"),
            Value::Int(-42),
            Value::Num(3.7),
            Value::Num(f64::NEG_INFINITY),
            Value::str("Fall 1989"),
            Value::Bool(true),
        ];
        let mut e = Enc::new();
        for v in &values {
            e.value(v);
        }
        let bytes = e.finish();
        let mut d = Dec::new(&bytes).unwrap();
        for v in &values {
            assert_eq!(&d.value().unwrap(), v);
        }
        d.expect_end().unwrap();
    }

    #[test]
    fn rule_roundtrip_preserves_rendering() {
        let r = parse_rule("honor(X) :- student(X, Y, Z), Z > 3.7.").unwrap();
        let mut e = Enc::new();
        e.rule(&r);
        let bytes = e.finish();
        let decoded = Dec::new(&bytes).unwrap().rule().unwrap();
        assert_eq!(decoded, r);
        assert_eq!(decoded.to_string(), r.to_string());
    }

    #[test]
    fn repeated_symbols_share_one_table_entry() {
        let a = parse_atom("prereq(c1, c1)").unwrap();
        let mut once = Enc::new();
        once.atom(&a);
        let b = parse_atom("prereq(c1, c2)").unwrap();
        let mut twice = Enc::new();
        twice.atom(&b);
        // Same atom shape; the repeated constant must not cost a second
        // string, so the two encodings differ only by c2's table entry.
        assert!(once.finish().len() < twice.finish().len());
    }

    #[test]
    fn malformed_input_errors_instead_of_panicking() {
        // Truncated table, bogus ids, bad tags, absurd counts.
        for bytes in [
            vec![5u8],                   // table claims 5 entries, no data
            vec![1, 10, b'a'],           // entry claims 10 bytes, has 1
            vec![0, 9],                  // value tag 9
            vec![0, 0, 200],             // sym id 200 with empty table
            vec![255, 255, 255, 255, 8], // huge table count
        ] {
            let r = Dec::new(&bytes).and_then(|mut d| d.value());
            assert!(r.is_err(), "{bytes:?} should fail to decode");
        }
    }

    #[test]
    fn constraint_roundtrip() {
        let c = Constraint::new(vec![
            parse_atom("foreign(X)").unwrap(),
            parse_atom("unmarried(X)").unwrap(),
        ]);
        let mut e = Enc::new();
        e.constraint(&c);
        let bytes = e.finish();
        assert_eq!(Dec::new(&bytes).unwrap().constraint().unwrap(), c);
    }
}
