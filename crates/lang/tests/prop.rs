//! Property-based tests for the statement language: generated statements
//! round-trip through Display → parse, and the parser never panics on
//! arbitrary input.

use proptest::prelude::*;
use qdk_lang::ast::Statement;
use qdk_lang::parser::{parse_script, parse_statement};

fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,6}".prop_filter("reserved words", |s| {
        !matches!(
            s.as_str(),
            "not"
                | "and"
                | "or"
                | "where"
                | "retrieve"
                | "describe"
                | "compare"
                | "with"
                | "predicate"
                | "key"
                | "necessary"
        )
    })
}

fn variable() -> impl Strategy<Value = String> {
    "[A-Z][a-z0-9]{0,4}".prop_map(|s| s)
}

fn term() -> impl Strategy<Value = String> {
    prop_oneof![
        ident(),
        variable(),
        (-99i64..99).prop_map(|i| i.to_string()),
        (0u32..50).prop_map(|i| format!("{}.{}", i, i % 10)),
    ]
}

fn atom() -> impl Strategy<Value = String> {
    (ident(), proptest::collection::vec(term(), 1..4))
        .prop_map(|(p, args)| format!("{p}({})", args.join(", ")))
}

fn comparison() -> impl Strategy<Value = String> {
    (
        variable(),
        prop_oneof![Just(">"), Just(">="), Just("<"), Just("<="), Just("!=")],
        (0u32..9).prop_map(|i| format!("{i}.5")),
    )
        .prop_map(|(v, op, c)| format!("({v} {op} {c})"))
}

fn literal() -> impl Strategy<Value = String> {
    prop_oneof![
        4 => atom(),
        1 => comparison(),
        1 => atom().prop_map(|a| format!("not {a}")),
    ]
}

fn formula() -> impl Strategy<Value = String> {
    proptest::collection::vec(literal(), 1..4).prop_map(|ls| ls.join(" and "))
}

fn statement_src() -> impl Strategy<Value = String> {
    prop_oneof![
        (atom(), formula()).prop_map(|(a, f)| format!("retrieve {a} where {f}.")),
        (atom(), formula()).prop_map(|(a, f)| format!("describe {a} where {f}.")),
        atom().prop_map(|a| format!("describe {a}.")),
        (atom(), formula(), formula())
            .prop_map(|(a, f1, f2)| format!("describe {a} where {f1} or {f2}.")),
        (atom(), atom()).prop_map(|(a, h)| format!("describe {a} where not {h}.")),
        formula().prop_map(|f| format!("describe * where {f}.")),
        (atom(), atom()).prop_map(|(a, b)| format!("compare (describe {a}) with (describe {b}).")),
        (ident(), proptest::collection::vec(variable(), 1..4))
            .prop_map(|(p, attrs)| { format!("predicate {p}({}).", attrs.join(", ")) }),
        (atom(), formula()).prop_map(|(h, b)| format!("{h} :- {b}.")),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Parse → Display → parse is the identity on generated statements.
    #[test]
    fn statement_roundtrip(src in statement_src()) {
        let parsed = match parse_statement(&src) {
            Ok(s) => s,
            // Some generated strings are legitimately rejected (e.g. a
            // comparison as a rule head); rejection must be an Err, never
            // a panic — reaching here is fine.
            Err(_) => return Ok(()),
        };
        let printed = parsed.to_string();
        let reparsed = parse_statement(&printed)
            .unwrap_or_else(|e| panic!("reparse of {printed:?} failed: {e}"));
        prop_assert_eq!(&parsed, &reparsed, "printed: {}", printed);
    }

    /// The parser returns Err (never panics) on arbitrary junk.
    #[test]
    fn parser_never_panics(src in "[ -~\\n]{0,120}") {
        let _ = parse_statement(&src);
        let _ = parse_script(&src);
    }

    /// Scripts of valid statements parse as their concatenation.
    #[test]
    fn scripts_concatenate(srcs in proptest::collection::vec(statement_src(), 1..5)) {
        let mut valid: Vec<Statement> = Vec::new();
        let mut text = String::new();
        for s in &srcs {
            if let Ok(st) = parse_statement(s) {
                valid.push(st);
                text.push_str(s);
                text.push('\n');
            }
        }
        let script = parse_script(&text)
            .unwrap_or_else(|e| panic!("script of valid statements failed: {e}\n{text}"));
        prop_assert_eq!(script, valid);
    }
}
