//! Epoch publication for concurrent serving.
//!
//! A [`Publisher`] owns the single writer's side of an
//! [`EpochCell`]: after a batch of mutations it freezes the current
//! [`KnowledgeBase`] into an immutable [`KbState`] — data *and* the
//! compiled plan for that data — and publishes it atomically. Readers
//! pin `(version, Arc<KbState>)` pairs and query without taking any
//! lock: the knowledge base's copy-on-write storage means the clone
//! taken at publish time shares every tuple segment and index the next
//! batch does not touch.

use std::sync::Arc;

use qdk_engine::ProgramPlan;
use qdk_storage::{EpochCell, EpochId};

use crate::error::Result;
use crate::kb::KnowledgeBase;

/// One published epoch: an immutable knowledge base plus the compiled
/// plan pinned next to the data it was compiled for. Readers holding an
/// `Arc<KbState>` answer queries with zero locks — the plan rides along,
/// so even the plan-cache mutex is never touched on the snapshot path.
#[derive(Debug)]
pub struct KbState {
    /// Which epoch this state was published as.
    pub epoch: EpochId,
    /// The frozen knowledge base (facts, rules, constraints, options).
    pub kb: KnowledgeBase,
    /// The compiled program for `kb`'s rules, prebuilt at publish time.
    pub plan: Arc<ProgramPlan>,
}

/// The single writer's handle on the epoch cell: batches mutations in a
/// private [`KnowledgeBase`] and publishes immutable snapshots of it.
#[derive(Debug)]
pub struct Publisher {
    cell: Arc<EpochCell<KbState>>,
    last: Arc<KbState>,
}

impl Publisher {
    /// Publishes `kb`'s current state as the first epoch and returns the
    /// writer handle. `kb` stays with the caller; the published state is
    /// a copy-on-write clone.
    pub fn new(kb: &mut KnowledgeBase) -> Result<Publisher> {
        let plan = kb.prepare_publish(None)?;
        let state = Arc::new(KbState {
            epoch: EpochId(1),
            kb: kb.clone(),
            plan,
        });
        Ok(Publisher {
            cell: Arc::new(EpochCell::from_arc(Arc::clone(&state))),
            last: state,
        })
    }

    /// The shared cell readers subscribe to.
    pub fn cell(&self) -> Arc<EpochCell<KbState>> {
        Arc::clone(&self.cell)
    }

    /// The most recently published state.
    pub fn last(&self) -> &Arc<KbState> {
        &self.last
    }

    /// The epoch of the most recent publish.
    pub fn epoch(&self) -> EpochId {
        self.last.epoch
    }

    /// How many reader handles currently pin the latest epoch, not
    /// counting the publisher's own — the `snapshot_pins` metrics gauge.
    /// Readers still pinned to older epochs are not counted (their
    /// `Arc`s reference states the cell no longer holds).
    pub fn pinned_readers(&self) -> u64 {
        self.cell.pinned().saturating_sub(1)
    }

    /// Freezes `kb` and publishes it as the next epoch. Composite-index
    /// demand observed by readers of the previous epoch is adopted first,
    /// the plan's multi-bound scans get their indexes prebuilt, and the
    /// WAL (if any) is forced to stable storage *before* the new epoch
    /// becomes visible — a published epoch is always durable. Readers
    /// that pinned an older snapshot are unaffected; they see the new
    /// epoch at their next `refresh`.
    pub fn publish(&mut self, kb: &mut KnowledgeBase) -> Result<EpochId> {
        let plan = kb.prepare_publish(Some(&self.last.kb))?;
        let epoch = EpochId(self.last.epoch.0 + 1);
        let state = Arc::new(KbState {
            epoch,
            kb: kb.clone(),
            plan,
        });
        self.last = Arc::clone(&state);
        self.cell.publish_arc(state);
        kb.describe_options().sink.counter("epoch_publish", 1);
        Ok(epoch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdk_logic::parser::parse_atom;

    fn kb_with(facts: &[&str]) -> KnowledgeBase {
        let mut kb = KnowledgeBase::new();
        kb.declare("edge", &["from", "to"], None).unwrap();
        for f in facts {
            kb.add_fact(&parse_atom(f).unwrap()).unwrap();
        }
        kb
    }

    #[test]
    fn publish_advances_epochs_and_readers_pin_old_states() {
        let mut kb = kb_with(&["edge(a, b)"]);
        let mut publisher = Publisher::new(&mut kb).unwrap();
        assert_eq!(publisher.epoch(), EpochId(1));

        let cell = publisher.cell();
        let (v1, s1) = cell.load();
        assert_eq!(s1.epoch, EpochId(1));

        kb.add_fact(&parse_atom("edge(b, c)").unwrap()).unwrap();
        let e2 = publisher.publish(&mut kb).unwrap();
        assert_eq!(e2, EpochId(2));

        // The pinned state still sees one fact; a fresh load sees two.
        assert_eq!(s1.kb.edb().relation("edge").unwrap().len(), 1);
        let (v2, s2) = cell.load();
        assert!(v2 > v1);
        assert_eq!(s2.kb.edb().relation("edge").unwrap().len(), 2);
    }

    #[test]
    fn published_state_pins_a_plan_for_its_own_rules() {
        let mut kb = kb_with(&["edge(a, b)", "edge(b, c)"]);
        kb.run("path(X, Y) :- edge(X, Y).").unwrap();
        let mut publisher = Publisher::new(&mut kb).unwrap();
        let s1 = Arc::clone(publisher.last());

        kb.run("path(X, Z) :- edge(X, Y), path(Y, Z).").unwrap();
        publisher.publish(&mut kb).unwrap();
        let s2 = Arc::clone(publisher.last());

        // Each epoch's plan matches its own rule set.
        assert!(!Arc::ptr_eq(&s1.plan, &s2.plan));
        let r = crate::parser::parse_statement("retrieve path(X, Y).").unwrap();
        let (crate::ast::Statement::Retrieve(ref r1), crate::ast::Statement::Retrieve(ref r2)) =
            (r.clone(), r)
        else {
            panic!("expected retrieve");
        };
        let a1 = s1
            .kb
            .retrieve_with_plan(&s1.plan, r1, s1.kb.strategy(), Default::default())
            .unwrap();
        let a2 = s2
            .kb
            .retrieve_with_plan(&s2.plan, r2, s2.kb.strategy(), Default::default())
            .unwrap();
        // Non-recursive epoch: the two edges. Recursive epoch: plus a→c.
        assert_eq!(a1.rows.len(), 2);
        assert_eq!(a2.rows.len(), 3);
    }
}
