//! Statement parser for the unified language.
//!
//! Layered on the logic crate's clause parser. Statement grammar:
//!
//! ```text
//! statement  := declaration | clause | retrieve | describe | compare
//!             | "retract" atom "." | "show" kind "." | "explain" atom ("where" formula)? "."
//! declaration:= "predicate" ident "(" name ("," name)* ")" ("key" INT)? "."
//! retrieve   := "retrieve" atom ("where" formula)? "."
//! describe   := "describe" "*" "where" formula "."
//!             | "describe" "where" formula "."
//!             | "describe" atom ("where" ("necessary")? formula
//!                               | "where" "not" atom)? "."
//! compare    := "compare" "(" describe-core ")" "with" "(" describe-core ")" "."
//! formula    := literal (("and" | ",") literal)*
//! clause     := <as in qdk-logic>
//! ```
//!
//! The twin statements differ only in their initial keyword, exactly as
//! §3.2 requires.

use crate::ast::Statement;
use crate::error::{LangError, Result};
use qdk_core::Describe;
use qdk_engine::Retrieve;
use qdk_logic::parser::Parser;
use qdk_logic::{Atom, Literal, ParseError};

/// Parses a single statement (must consume all input).
pub fn parse_statement(src: &str) -> Result<Statement> {
    let mut p = Parser::new(src)?;
    let s = statement(&mut p)?;
    if !p.at_end() {
        return Err(LangError::from(
            p.error_here("trailing input after statement"),
        ));
    }
    Ok(s)
}

/// Parses a whole script: a sequence of statements.
pub fn parse_script(src: &str) -> Result<Vec<Statement>> {
    let mut p = Parser::new(src)?;
    let mut out = Vec::new();
    while !p.at_end() {
        out.push(statement(&mut p)?);
    }
    Ok(out)
}

fn statement(p: &mut Parser) -> Result<Statement> {
    if p.eat_keyword("predicate") {
        return declaration(p);
    }
    if p.eat_keyword("retrieve") {
        let subject = p.atom()?;
        let qualifier = if p.eat_keyword("where") {
            formula(p)?
        } else {
            Vec::new()
        };
        p.expect_period()?;
        return Ok(Statement::Retrieve(Retrieve::new(subject, qualifier)));
    }
    if p.eat_keyword("describe") {
        return describe_statement(p);
    }
    if p.eat_keyword("retract") {
        let atom = p.atom()?;
        p.expect_period()?;
        return Ok(Statement::Retract(atom));
    }
    if p.eat_keyword("show") {
        let kind = if p.eat_keyword("predicates") {
            crate::ast::ShowKind::Predicates
        } else if p.eat_keyword("rules") {
            crate::ast::ShowKind::Rules
        } else if p.eat_keyword("constraints") {
            crate::ast::ShowKind::Constraints
        } else {
            return Err(LangError::from(
                p.error_here("expected 'predicates', 'rules' or 'constraints'"),
            ));
        };
        p.expect_period()?;
        return Ok(Statement::Show(kind));
    }
    if p.eat_keyword("explain") {
        let subject = p.atom()?;
        let hypothesis = if p.eat_keyword("where") {
            formula(p)?
        } else {
            Vec::new()
        };
        p.expect_period()?;
        return Ok(Statement::Explain(Describe::new(subject, hypothesis)));
    }
    if p.eat_keyword("compare") {
        return compare_statement(p);
    }
    // Otherwise: a clause (fact, rule, or constraint).
    let program_src = clause_via_program(p)?;
    Ok(program_src)
}

fn declaration(p: &mut Parser) -> Result<Statement> {
    let name = p.identifier()?;
    if !p.eat_lparen() {
        return Err(LangError::from(
            p.error_here("expected '(' after predicate name"),
        ));
    }
    let mut attrs = vec![p.name()?];
    while p.eat_comma() {
        attrs.push(p.name()?);
    }
    if !p.eat_rparen() {
        return Err(LangError::from(p.error_here("expected ')'")));
    }
    let key = if p.eat_keyword("key") {
        let k = p.integer()?;
        if k < 0 || k as usize > attrs.len() {
            return Err(LangError::from(p.error_here(format!(
                "key length {k} out of range for arity {}",
                attrs.len()
            ))));
        }
        Some(k as usize)
    } else {
        None
    };
    p.expect_period()?;
    Ok(Statement::Declare { name, attrs, key })
}

fn describe_statement(p: &mut Parser) -> Result<Statement> {
    // describe * where ψ.
    if p.eat_star() {
        if !p.eat_keyword("where") {
            return Err(LangError::from(p.error_here("expected 'where' after '*'")));
        }
        let hypothesis = formula(p)?;
        p.expect_period()?;
        return Ok(Statement::DescribeWildcard { hypothesis });
    }
    // describe where ψ.  (subjectless)
    if p.eat_keyword("where") {
        let hypothesis = positive_formula(p)?;
        p.expect_period()?;
        return Ok(Statement::DescribePossible { hypothesis });
    }
    let subject = p.atom()?;
    if p.eat_keyword("where") {
        if p.eat_keyword("necessary") {
            let hypothesis = formula(p)?;
            p.expect_period()?;
            return Ok(Statement::DescribeNecessary(Describe::new(
                subject, hypothesis,
            )));
        }
        if p.eat_not() {
            let negated = p.atom()?;
            p.expect_period()?;
            return Ok(Statement::DescribeWithout { subject, negated });
        }
        let first = formula(p)?;
        if p.peek_keyword("or") {
            let mut disjuncts = vec![first];
            while p.eat_keyword("or") {
                disjuncts.push(formula(p)?);
            }
            p.expect_period()?;
            return Ok(Statement::DescribeDisjunctive { subject, disjuncts });
        }
        p.expect_period()?;
        return Ok(Statement::Describe(Describe::new(subject, first)));
    }
    p.expect_period()?;
    Ok(Statement::Describe(Describe::new(subject, Vec::new())))
}

fn compare_statement(p: &mut Parser) -> Result<Statement> {
    let first = parenthesized_describe(p)?;
    if !p.eat_keyword("with") {
        return Err(LangError::from(p.error_here("expected 'with'")));
    }
    let second = parenthesized_describe(p)?;
    p.expect_period()?;
    Ok(Statement::Compare { first, second })
}

fn parenthesized_describe(p: &mut Parser) -> Result<Describe> {
    if !p.eat_lparen() {
        return Err(LangError::from(p.error_here("expected '('")));
    }
    if !p.eat_keyword("describe") {
        return Err(LangError::from(p.error_here("expected 'describe'")));
    }
    let subject = p.atom()?;
    let hypothesis = if p.eat_keyword("where") {
        formula(p)?
    } else {
        Vec::new()
    };
    if !p.eat_rparen() {
        return Err(LangError::from(p.error_here("expected ')'")));
    }
    Ok(Describe::new(subject, hypothesis))
}

/// A formula: literals separated by `and` or `,`.
fn formula(p: &mut Parser) -> Result<Vec<Literal>> {
    let mut lits = vec![p.literal()?];
    loop {
        if p.eat_keyword("and") || p.eat_comma() {
            lits.push(p.literal()?);
        } else {
            return Ok(lits);
        }
    }
}

/// A positive formula (atoms only), for subjectless describes.
fn positive_formula(p: &mut Parser) -> Result<Vec<Atom>> {
    let lits = formula(p)?;
    lits.into_iter()
        .map(|l| {
            if l.positive {
                Ok(l.atom)
            } else {
                Err(ParseError {
                    message: format!("hypothesis must be positive, found: {l}"),
                    line: 1,
                    column: 1,
                }
                .into())
            }
        })
        .collect()
}

/// One clause parsed through the logic crate's program machinery.
fn clause_via_program(p: &mut Parser) -> Result<Statement> {
    // The logic parser exposes atom/body; reconstruct clause parsing here
    // to avoid consuming beyond the period.
    if p.eat_if() {
        let body = body_literals(p)?;
        p.expect_period()?;
        let atoms = body
            .into_iter()
            .map(|l| {
                if l.positive {
                    Ok(l.atom)
                } else {
                    Err(ParseError {
                        message: "negative literal in integrity constraint".to_string(),
                        line: 1,
                        column: 1,
                    })
                }
            })
            .collect::<std::result::Result<Vec<_>, _>>()?;
        return Ok(Statement::Constraint(qdk_logic::Constraint::new(atoms)));
    }
    let head = p.atom()?;
    if head.is_builtin() {
        return Err(LangError::from(
            p.error_here("a comparison cannot be the head of a rule"),
        ));
    }
    let body = if p.eat_if() {
        body_literals(p)?
    } else {
        Vec::new()
    };
    p.expect_period()?;
    Ok(Statement::Clause(qdk_logic::Rule::with_literals(
        head, body,
    )))
}

fn body_literals(p: &mut Parser) -> Result<Vec<Literal>> {
    let mut lits = vec![p.literal()?];
    while p.eat_comma() || p.eat_keyword("and") {
        lits.push(p.literal()?);
    }
    Ok(lits)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_declaration_with_key() {
        let s = parse_statement("predicate student(Sname, Major, Gpa) key 1.").unwrap();
        assert_eq!(
            s,
            Statement::Declare {
                name: "student".into(),
                attrs: vec!["Sname".into(), "Major".into(), "Gpa".into()],
                key: Some(1),
            }
        );
        assert_eq!(s.to_string(), "predicate student(Sname, Major, Gpa) key 1.");
    }

    #[test]
    fn parses_declaration_without_key() {
        let s = parse_statement("predicate enroll(Sname, Ctitle).").unwrap();
        assert!(matches!(s, Statement::Declare { key: None, .. }));
    }

    #[test]
    fn rejects_out_of_range_key() {
        assert!(parse_statement("predicate p(A) key 2.").is_err());
    }

    #[test]
    fn parses_fact_and_rule() {
        assert!(matches!(
            parse_statement("student(ann, math, 3.9).").unwrap(),
            Statement::Clause(_)
        ));
        let s = parse_statement("honor(X) :- student(X, Y, Z), Z > 3.7.").unwrap();
        let Statement::Clause(r) = s else { panic!() };
        assert_eq!(r.body.len(), 2);
    }

    #[test]
    fn parses_retrieve_with_and_keyword() {
        // Paper Example 2's phrasing with "and".
        let s = parse_statement(
            "retrieve answer(X) where can_ta(X, databases) and student(X, math, V) and (V > 3.7).",
        )
        .unwrap();
        let Statement::Retrieve(r) = s else { panic!() };
        assert_eq!(r.subject.pred, "answer");
        assert_eq!(r.qualifier.len(), 3);
    }

    #[test]
    fn retrieve_and_describe_differ_only_in_keyword() {
        // §3.2's twin-statement claim, literally.
        let r = parse_statement("retrieve honor(X) where enroll(X, databases).").unwrap();
        let d = parse_statement("describe honor(X) where enroll(X, databases).").unwrap();
        let Statement::Retrieve(r) = r else { panic!() };
        let Statement::Describe(d) = d else { panic!() };
        assert_eq!(r.subject, d.subject);
        assert_eq!(r.qualifier, d.hypothesis);
    }

    #[test]
    fn parses_describe_without_where() {
        let s = parse_statement("describe honor(X).").unwrap();
        let Statement::Describe(d) = s else { panic!() };
        assert!(d.hypothesis.is_empty());
    }

    #[test]
    fn parses_necessary() {
        let s = parse_statement(
            "describe honor(X) where necessary complete(X, Y, Z, U) and (U > 3.3).",
        )
        .unwrap();
        assert!(matches!(s, Statement::DescribeNecessary(_)));
    }

    #[test]
    fn parses_negated_hypothesis() {
        let s = parse_statement("describe can_ta(X, Y) where not honor(X).").unwrap();
        let Statement::DescribeWithout { subject, negated } = s else {
            panic!()
        };
        assert_eq!(subject.pred, "can_ta");
        assert_eq!(negated.pred, "honor");
    }

    #[test]
    fn parses_subjectless_describe() {
        // The paper's §6 example, verbatim modulo ASCII.
        let s = parse_statement("describe where student(X, Y, Z) and (Z < 3.5) and can_ta(X, U).")
            .unwrap();
        let Statement::DescribePossible { hypothesis } = s else {
            panic!()
        };
        assert_eq!(hypothesis.len(), 3);
    }

    #[test]
    fn parses_wildcard_describe() {
        let s = parse_statement("describe * where honor(X).").unwrap();
        assert!(matches!(s, Statement::DescribeWildcard { .. }));
    }

    #[test]
    fn parses_compare() {
        let s =
            parse_statement("compare (describe honor(X)) with (describe deans_list(X)).").unwrap();
        let Statement::Compare { first, second } = s else {
            panic!()
        };
        assert_eq!(first.subject.pred, "honor");
        assert_eq!(second.subject.pred, "deans_list");
    }

    #[test]
    fn parses_compare_with_hypotheses() {
        let s = parse_statement(
            "compare (describe can_ta(X, Y) where honor(X)) with (describe can_ta(X, Y) where teach(susan, Y)).",
        )
        .unwrap();
        let Statement::Compare { first, .. } = s else {
            panic!()
        };
        assert_eq!(first.hypothesis.len(), 1);
    }

    #[test]
    fn parses_script() {
        let script = parse_script(
            "predicate student(Sname, Major, Gpa) key 1.\n\
             student(ann, math, 3.9).\n\
             honor(X) :- student(X, Y, Z), Z > 3.7.\n\
             retrieve honor(X).\n\
             describe honor(X).",
        )
        .unwrap();
        assert_eq!(script.len(), 5);
    }

    #[test]
    fn parses_constraint_statement() {
        let s = parse_statement(":- honor(X), suspended(X).").unwrap();
        assert!(matches!(s, Statement::Constraint(_)));
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse_statement("describe honor(X). extra").is_err());
    }

    #[test]
    fn negative_subjectless_hypothesis_rejected() {
        assert!(parse_statement("describe where not honor(X).").is_err());
    }
}
