//! The paper's example databases, ready to load.
//!
//! * [`university`] — the knowledge-rich database of §2.2: eight EDB
//!   predicates (`student`, `professor`, `course`, `enroll`, `teach`,
//!   `prereq`, `taught`, `complete`) and the three IDB predicates
//!   (`honor`, `prior`, `can_ta`), with a fact population sized so the
//!   worked examples have non-trivial answers;
//! * [`university_extended`] — the same plus the introduction's
//!   embellishments: demographics (nationality / marital status) with the
//!   "foreign students must be married" integrity constraint, and the
//!   Dean's-List category for the concept-comparison query;
//! * [`routing`] — the introduction's fifth/sixth example: airports,
//!   flights, and the standard recursive definition of reachability
//!   (optionally with the symmetric rule, for the "is reachability
//!   symmetric?" knowledge query).

use crate::kb::KnowledgeBase;

/// The §2.2 university database.
pub fn university() -> KnowledgeBase {
    let mut kb = KnowledgeBase::new();
    kb.load(UNIVERSITY_SCHEMA).expect("schema loads");
    kb.load(UNIVERSITY_FACTS).expect("facts load");
    kb.load(UNIVERSITY_RULES).expect("rules load");
    kb
}

/// The university database with the introduction's extensions.
pub fn university_extended() -> KnowledgeBase {
    let mut kb = university();
    kb.load(UNIVERSITY_EXTENSION).expect("extension loads");
    kb
}

/// The routing database. `symmetric` adds the (untyped recursive) rule
/// `reachable(X, Y) :- reachable(Y, X)`, making reachability symmetric —
/// the knowledge the introduction's sixth query asks about.
pub fn routing(symmetric: bool) -> KnowledgeBase {
    let mut kb = KnowledgeBase::new();
    kb.load(ROUTING_BASE).expect("routing loads");
    if symmetric {
        kb.run("reachable(X, Y) :- reachable(Y, X).")
            .expect("symmetric rule loads");
    }
    kb
}

/// Schema of §2.2, with keys for the functional dependencies the
/// hypothetical-possibility queries rely on.
pub const UNIVERSITY_SCHEMA: &str = "\
predicate student(Sname, Major, Gpa) key 1.
predicate professor(Pname, Dept, Phone) key 1.
predicate course(Ctitle, Units) key 1.
predicate enroll(Sname, Ctitle).
predicate teach(Pname, Ctitle).
predicate prereq(Ctitle, Ptitle).
predicate taught(Pname, Ctitle, Sem, Eval) key 3.
predicate complete(Sname, Ctitle, Sem, Grade) key 3.
";

/// A fact population for the schema. Chosen so that:
/// * Example 1 (`retrieve honor(X) where enroll(X, databases)`) returns
///   exactly `ann`;
/// * Example 2 (the `answer` query) returns `ann` and `bob`;
/// * the `prior` chain `databases → datastructures → programming` exists.
pub const UNIVERSITY_FACTS: &str = "\
student(ann, math, 3.9).
student(bob, math, 3.8).
student(cara, physics, 3.5).
student(dan, math, 3.9).
student(eve, physics, 3.95).

professor(susan, cs, 51234).
professor(peter, cs, 51235).
professor(mary, math, 51236).

course(databases, 4).
course(datastructures, 4).
course(programming, 3).
course(calculus, 4).
course(algebra, 3).

enroll(ann, databases).
enroll(cara, databases).
enroll(dan, calculus).
enroll(eve, databases).

teach(susan, databases).
teach(mary, calculus).

prereq(databases, datastructures).
prereq(datastructures, programming).
prereq(calculus, algebra).

taught(susan, databases, f88, 3.5).
taught(peter, databases, f87, 3.9).
taught(mary, calculus, f88, 3.2).

complete(ann, databases, f88, 3.6).
complete(bob, databases, f87, 4.0).
complete(dan, databases, f88, 3.2).
complete(eve, calculus, f87, 3.8).
";

/// The IDB of §2.2, verbatim (modulo ASCII).
pub const UNIVERSITY_RULES: &str = "\
honor(X) :- student(X, Y, Z), Z > 3.7.
prior(X, Y) :- prereq(X, Y).
prior(X, Y) :- prereq(X, Z), prior(Z, Y).
can_ta(X, Y) :- honor(X), complete(X, Y, Z, U), U > 3.3, taught(V, Y, Z, W), teach(V, Y).
can_ta(X, Y) :- honor(X), complete(X, Y, Z, 4.0).
";

/// The introduction's embellishments: demographics with the
/// foreign-students-are-married constraint, and the Dean's List.
pub const UNIVERSITY_EXTENSION: &str = "\
predicate demographic(Sname, Nationality, Mstatus) key 1.
demographic(ann, usa, single).
demographic(bob, france, married).
demographic(cara, usa, married).
demographic(dan, japan, married).
demographic(eve, usa, single).

foreign(X) :- demographic(X, N, M), N != usa.
unmarried(X) :- demographic(X, N, single).
:- foreign(X), unmarried(X).

deans_list(X) :- student(X, Y, Z), Z > 3.9.
";

/// Airports and flights, with the standard recursive definition of
/// reachability (strongly linear, typed — transformable).
pub const ROUTING_BASE: &str = "\
predicate airport(Code) key 1.
predicate flight(From, To).

airport(lax).
airport(sfo).
airport(jfk).
airport(ord).
airport(sea).

flight(lax, sfo).
flight(sfo, sea).
flight(sfo, ord).
flight(ord, jfk).

reachable(X, Y) :- flight(X, Y).
reachable(X, Y) :- flight(X, Z), reachable(Z, Y).
";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn university_loads_and_answers_example1() {
        let mut kb = university();
        let a = kb
            .run("retrieve honor(X) where enroll(X, databases).")
            .unwrap();
        let d = a.as_data().unwrap();
        // ann (3.9, enrolled) and eve (3.95, enrolled).
        assert_eq!(d.len(), 2);
        assert!(d.contains_row(&["ann"]) && d.contains_row(&["eve"]));
    }

    #[test]
    fn university_answers_example2() {
        let mut kb = university();
        let a = kb
            .run(
                "retrieve answer(X) where can_ta(X, databases) and student(X, math, V) and V > 3.7.",
            )
            .unwrap();
        let d = a.as_data().unwrap();
        assert_eq!(d.len(), 2);
        assert!(d.contains_row(&["ann"]) && d.contains_row(&["bob"]));
    }

    #[test]
    fn extended_has_constraint_and_deans_list() {
        let kb = university_extended();
        assert_eq!(kb.constraints().len(), 1);
        assert!(kb.idb().defines("deans_list"));
        assert!(kb.idb().defines("foreign"));
    }

    #[test]
    fn routing_reaches_transitively() {
        let mut kb = routing(false);
        let a = kb.run("retrieve reachable(lax, Y).").unwrap();
        let d = a.as_data().unwrap();
        // lax → sfo → {sea, ord} → jfk.
        assert_eq!(d.len(), 4);
        assert!(d.contains_row(&["jfk"]));
    }

    #[test]
    fn symmetric_routing_adds_untyped_rule() {
        let kb = routing(true);
        assert_eq!(kb.idb().rules_for("reachable").count(), 3);
    }
}
