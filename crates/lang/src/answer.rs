//! Unified answers.

use qdk_core::compare::CompareAnswer;
use qdk_core::extensions::{NegationAnswer, PossibilityAnswer};
use qdk_core::DescribeAnswer;
use qdk_engine::DataAnswer;
use qdk_logic::Sym;
use std::fmt;

/// The answer to one statement of the unified language. The paper's three
/// query-answering mechanisms map onto the variants: data queries answer
/// with data, knowledge queries with knowledge; definitions acknowledge.
#[derive(Clone, Debug, PartialEq)]
pub enum Answer {
    /// Rows of data (from `retrieve`).
    Data(DataAnswer),
    /// Theorems (from `describe` and `describe … where necessary`).
    Knowledge(DescribeAnswer),
    /// A necessity verdict (from `describe … where not h`).
    Necessity(NegationAnswer),
    /// A possibility verdict (from subjectless `describe where ψ`).
    Possibility(PossibilityAnswer),
    /// Per-concept theorems (from `describe * where ψ`).
    Wildcard(Vec<(Sym, DescribeAnswer)>),
    /// A concept comparison (from `compare`).
    Comparison(Box<CompareAnswer>),
    /// Acknowledgement of a definition or declaration.
    Ack(String),
}

impl Answer {
    /// The data answer, if this is one.
    pub fn as_data(&self) -> Option<&DataAnswer> {
        match self {
            Answer::Data(d) => Some(d),
            _ => None,
        }
    }

    /// The knowledge answer, if this is one.
    pub fn as_knowledge(&self) -> Option<&DescribeAnswer> {
        match self {
            Answer::Knowledge(k) => Some(k),
            _ => None,
        }
    }

    /// The comparison answer, if this is one.
    pub fn as_comparison(&self) -> Option<&CompareAnswer> {
        match self {
            Answer::Comparison(c) => Some(c),
            _ => None,
        }
    }

    /// The truth value for boolean-like answers (possibility/necessity),
    /// if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Answer::Possibility(p) => Some(p.possible),
            Answer::Necessity(n) => Some(n.derivable_without),
            _ => None,
        }
    }
}

impl fmt::Display for Answer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Answer::Data(d) => write!(f, "{d}"),
            Answer::Knowledge(k) => write!(f, "{k}"),
            Answer::Necessity(n) => write!(f, "{n}"),
            Answer::Possibility(p) => write!(f, "{p}"),
            Answer::Wildcard(entries) => {
                for (pred, a) in entries {
                    writeln!(f, "{pred}:")?;
                    write!(f, "{a}")?;
                }
                Ok(())
            }
            Answer::Comparison(c) => write!(f, "{c}"),
            Answer::Ack(msg) => writeln!(f, "{msg}"),
        }
    }
}
