//! Statement forms of the unified language.

use qdk_core::Describe;
use qdk_engine::Retrieve;
use qdk_logic::{Atom, Constraint, Literal, Rule};
use std::fmt;

/// What a `show` statement lists.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShowKind {
    /// Declared EDB predicates with their schemas and fact counts.
    Predicates,
    /// IDB rules.
    Rules,
    /// Integrity constraints.
    Constraints,
}

/// One statement of the unified language.
#[derive(Clone, Debug, PartialEq)]
pub enum Statement {
    /// `predicate student(Sname, Major, Gpa) key 1.` — declares an EDB
    /// predicate, optionally with a key-prefix length (the functional
    /// dependency used by hypothetical-possibility queries).
    Declare {
        /// Predicate name.
        name: String,
        /// Attribute names.
        attrs: Vec<String>,
        /// Number of leading key attributes, if declared.
        key: Option<usize>,
    },
    /// A fact or rule, e.g. `honor(X) :- student(X, Y, Z), Z > 3.7.`
    /// Ground bodyless clauses insert EDB facts; everything else extends
    /// the IDB.
    Clause(Rule),
    /// An integrity constraint `:- p, q.`
    Constraint(Constraint),
    /// `retract f.` — removes a stored fact.
    Retract(Atom),
    /// `show predicates.` / `show rules.` / `show constraints.` — catalog
    /// introspection.
    Show(ShowKind),
    /// `explain p where ψ.` — a describe whose answer is rendered with
    /// each theorem's derivation tree.
    Explain(Describe),
    /// `retrieve p where ψ.` — the data query (§3.1).
    Retrieve(Retrieve),
    /// `describe p where ψ.` — the knowledge query (§3.2).
    Describe(Describe),
    /// `describe p where necessary ψ.` — §6 extension 1.
    DescribeNecessary(Describe),
    /// `describe p where ψ₁ or ψ₂.` — §6's generalized (disjunctive)
    /// qualifier.
    DescribeDisjunctive {
        /// The subject concept.
        subject: Atom,
        /// The disjuncts, each a conjunction.
        disjuncts: Vec<Vec<Literal>>,
    },
    /// `describe p where not h.` — §6 extension 2.
    DescribeWithout {
        /// The subject concept.
        subject: Atom,
        /// The concept hypothetically removed.
        negated: Atom,
    },
    /// `describe where ψ.` — §6 extension 3 (hypothetical possibility).
    DescribePossible {
        /// The hypothetical conjunction.
        hypothesis: Vec<Atom>,
    },
    /// `describe * where ψ.` — §6 extension 4 (wildcard subject).
    DescribeWildcard {
        /// The hypothesis.
        hypothesis: Vec<Literal>,
    },
    /// `compare (describe p₁ where ψ₁) with (describe p₂ where ψ₂).`
    Compare {
        /// First concept.
        first: Describe,
        /// Second concept.
        second: Describe,
    },
}

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Statement::Declare { name, attrs, key } => {
                write!(f, "predicate {name}({})", attrs.join(", "))?;
                if let Some(k) = key {
                    write!(f, " key {k}")?;
                }
                write!(f, ".")
            }
            Statement::Clause(r) => write!(f, "{r}"),
            Statement::Constraint(c) => write!(f, "{c}"),
            Statement::Retract(a) => write!(f, "retract {a}."),
            Statement::Show(ShowKind::Predicates) => write!(f, "show predicates."),
            Statement::Show(ShowKind::Rules) => write!(f, "show rules."),
            Statement::Show(ShowKind::Constraints) => write!(f, "show constraints."),
            Statement::Explain(d) => write!(
                f,
                "explain {}.",
                d.to_string().trim_start_matches("describe ")
            ),
            Statement::Retrieve(r) => write!(f, "{r}."),
            Statement::Describe(d) => write!(f, "{d}."),
            Statement::DescribeNecessary(d) => {
                write!(f, "describe {} where necessary", d.subject)?;
                let parts: Vec<String> = d.hypothesis.iter().map(ToString::to_string).collect();
                write!(f, " {}.", parts.join(" and "))
            }
            Statement::DescribeDisjunctive { subject, disjuncts } => {
                let parts: Vec<String> = disjuncts
                    .iter()
                    .map(|d| {
                        d.iter()
                            .map(ToString::to_string)
                            .collect::<Vec<_>>()
                            .join(" and ")
                    })
                    .collect();
                write!(f, "describe {subject} where {}.", parts.join(" or "))
            }
            Statement::DescribeWithout { subject, negated } => {
                write!(f, "describe {subject} where not {negated}.")
            }
            Statement::DescribePossible { hypothesis } => {
                let parts: Vec<String> = hypothesis.iter().map(ToString::to_string).collect();
                write!(f, "describe where {}.", parts.join(" and "))
            }
            Statement::DescribeWildcard { hypothesis } => {
                let parts: Vec<String> = hypothesis.iter().map(ToString::to_string).collect();
                write!(f, "describe * where {}.", parts.join(" and "))
            }
            Statement::Compare { first, second } => {
                write!(f, "compare ({first}) with ({second}).")
            }
        }
    }
}
