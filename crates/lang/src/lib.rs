//! The unified query language of *Querying Database Knowledge*.
//!
//! The paper's thesis is that access to data and knowledge should be one
//! coherent instrument: "pairs of questions such as *Retrieve the honor
//! students* and *Describe the honor students* are expressed identically,
//! except for the initial keyword" (§3.2). This crate delivers that
//! instrument:
//!
//! * [`ast::Statement`] — the statement forms: declarations, clauses, and
//!   the `retrieve` / `describe` (with the §6 extensions) / `compare`
//!   queries;
//! * [`parser`] — text syntax for all statements;
//! * [`KnowledgeBase`] — the facade holding an EDB + IDB and executing
//!   statements into unified [`Answer`]s;
//! * [`datasets`] — the paper's example databases, ready to load: the
//!   §2.2 university database and the introduction's routing database.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(clippy::print_stderr, clippy::print_stdout)]

mod answer;
pub mod ast;
pub mod datasets;
mod error;
mod kb;
pub mod parser;
pub mod shared;

pub use answer::Answer;
pub use error::{LangError, Result};
pub use kb::KnowledgeBase;
pub use shared::{KbState, Publisher};
