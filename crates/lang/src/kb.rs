//! The knowledge base facade: one coherent instrument for data and
//! knowledge.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use crate::answer::Answer;
use crate::ast::Statement;
use crate::error::Result;
use crate::parser::{parse_script, parse_statement};
use qdk_core::{
    compare, describe, extensions, redundancy, Describe, DescribeCache, DescribeOptions,
};
use qdk_durability::{
    CheckpointData, DurabilityMetrics, DurabilityOptions, Durable, Lsn, Opened, RecoveryReport,
    RelationSnapshot, WalOp,
};
use qdk_engine::graph::DependencyGraph;
use qdk_engine::maintain::Doomed;
use qdk_engine::{
    query, Downgrade, Idb, MaintainStats, MaintainedStore, ProgramPlan, Retraction, Retrieve,
    Strategy,
};
use qdk_logic::metrics::{MetricsHub, MetricsSink, MetricsSnapshot};
use qdk_logic::obs::{Event, FanoutSink, ObsSink};
use qdk_logic::{Constraint, Rule, Sym, Term};
use qdk_storage::{Edb, Tuple};
use std::collections::HashMap;
use std::path::Path;
use std::sync::{Arc, Mutex, MutexGuard};

/// The cached compilation of the IDB (plans plus their interner), keyed
/// by the rules generation it was compiled under. Interior-mutable so
/// queries — which take `&self` — can fill it on first use.
///
/// Fact mutations do **not** touch the cache: a compiled program depends
/// only on the IDB (rule bodies, literal schedules) plus a cardinality
/// snapshot that steers join *order*, never answers — so fact churn can
/// at worst leave the order mildly stale, and the next rule change or
/// explicit [`KnowledgeBase::invalidate_plan`] refreshes the stats along
/// with the plans. Rule and constraint mutations bump the generation,
/// which makes the cached entry unreachable.
#[derive(Default)]
struct PlanCache(Mutex<Option<(u64, Arc<ProgramPlan>)>>);

impl PlanCache {
    /// Locks the slot; a poisoned lock only means another thread
    /// panicked mid-access, and the cached plan (or `None`) is still
    /// coherent, so recover the guard instead of propagating.
    fn slot(&self) -> MutexGuard<'_, Option<(u64, Arc<ProgramPlan>)>> {
        match self.0.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// The plan cached for rules generation `gen`, compiling `idb`
    /// against a fresh cardinality snapshot of `edb` if the cache is
    /// empty or holds another generation. The flag reports whether this
    /// call was a cache hit (for observability).
    fn get_or_compile(&self, gen: u64, idb: &Idb, edb: &Edb) -> (Arc<ProgramPlan>, bool) {
        let mut slot = self.slot();
        if let Some((cached_gen, p)) = &*slot {
            if *cached_gen == gen {
                return (Arc::clone(p), true);
            }
        }
        let p = Arc::new(ProgramPlan::compile_with_stats(idb, edb.stats()));
        *slot = Some((gen, Arc::clone(&p)));
        (p, false)
    }

    /// Drops the cached plan; the next query recompiles (picking up a
    /// fresh cardinality snapshot).
    fn invalidate(&self) {
        *self.slot() = None;
    }
}

impl Clone for PlanCache {
    fn clone(&self) -> Self {
        PlanCache(Mutex::new(self.slot().clone()))
    }
}

impl std::fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = if self.slot().is_some() {
            "compiled"
        } else {
            "empty"
        };
        write!(f, "PlanCache({state})")
    }
}

/// Downgrades recorded by mutation-side maintenance — an incremental step
/// that fell back to full recomputation, or a maintained store that had
/// to be dropped — queued for the next retrieve's answer so degraded
/// service is never silent. Interior-mutable because retrieves take
/// `&self`.
#[derive(Default)]
struct PendingDowngrades(Mutex<Vec<Downgrade>>);

impl PendingDowngrades {
    fn guard(&self) -> MutexGuard<'_, Vec<Downgrade>> {
        match self.0.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn push(&self, d: Downgrade) {
        self.guard().push(d);
    }

    fn drain(&self) -> Vec<Downgrade> {
        std::mem::take(&mut *self.guard())
    }

    fn snapshot(&self) -> Vec<Downgrade> {
        self.guard().clone()
    }
}

impl Clone for PendingDowngrades {
    fn clone(&self) -> Self {
        PendingDowngrades(Mutex::new(self.snapshot()))
    }
}

impl std::fmt::Debug for PendingDowngrades {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PendingDowngrades({})", self.guard().len())
    }
}

/// The describe-answer cache behind a lock, so knowledge queries — which
/// take `&self` — can record their answers (see [`qdk_core::cache`]).
#[derive(Default)]
struct DescribeCacheCell(Mutex<DescribeCache>);

impl DescribeCacheCell {
    fn guard(&self) -> MutexGuard<'_, DescribeCache> {
        match self.0.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl Clone for DescribeCacheCell {
    fn clone(&self) -> Self {
        DescribeCacheCell(Mutex::new(self.guard().clone()))
    }
}

impl std::fmt::Debug for DescribeCacheCell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DescribeCacheCell({} entries)", self.guard().len())
    }
}

/// How a retraction interacts with the maintained store, decided *before*
/// the tuple leaves the EDB (DRed's deletion phase reads the
/// pre-retraction state) and applied after.
enum RetractPlan {
    /// No maintained store, or the fact was not stored: nothing to do.
    Untracked,
    /// Negation over the affected region: fall back to recomputation.
    Recompute(String),
    /// DRed prepared a deletion overestimate (or proved the retraction
    /// touches no derived fact).
    Ready(Retraction),
    /// Preparation failed; the store must be dropped.
    Lost(String),
}

/// A knowledge-rich database: EDB facts, IDB rules, integrity
/// constraints, and the unified query interface over them.
#[derive(Clone, Debug, Default)]
pub struct KnowledgeBase {
    edb: Edb,
    idb: Idb,
    constraints: Vec<Constraint>,
    keys: HashMap<Sym, usize>,
    strategy: Strategy,
    opts: DescribeOptions,
    /// Compiled program shared by every retrieve until the rules change.
    plan: PlanCache,
    /// Rules generation: bumped by rule/constraint mutations, the plan
    /// cache key. Fact mutations leave it (and the cache) alone.
    rules_gen: u64,
    /// In-flight transaction buffer: while `Some`, logged ops collect
    /// here instead of hitting the WAL, and commit writes them as one
    /// atomic [`WalOp::Batch`] record (see [`Self::transaction`]).
    batch: Option<Vec<WalOp>>,
    /// The durable store, when this KB was opened with
    /// [`Self::open_durable`]; `None` for purely in-memory KBs. Shared
    /// behind an `Arc` so `Clone` keeps working — clones write to the
    /// *same* log, which is the only coherent reading since they also
    /// started from the same persistent state.
    durable: Option<Arc<Mutex<Durable>>>,
    /// Incrementally maintained derived facts (opt-in, built by
    /// [`Self::materialize_maintained`]): while present, every fact or
    /// rule mutation updates the derived state in place and bottom-up
    /// retrieves serve from it without re-running the fixpoint. `None`
    /// keeps the classic evaluate-per-query behaviour.
    maintained: Option<MaintainedStore>,
    /// Maintenance counters accumulated since the last
    /// [`Self::take_maintain_stats`].
    maintain_stats: MaintainStats,
    /// Lifetime maintenance totals — never taken, unlike
    /// `maintain_stats` — the source of the `maintain_*` metrics gauges.
    maintain_total: MaintainStats,
    /// The long-running metrics hub, when [`Self::enable_metrics`] was
    /// called. Shared behind an `Arc` so clones and epoch snapshots all
    /// aggregate into the *same* registry.
    metrics: Option<Arc<MetricsHub>>,
    /// Maintenance downgrades awaiting the next retrieve's answer.
    pending: PendingDowngrades,
    /// Cached complete describe answers, invalidated per predicate
    /// closure on rule/constraint changes.
    describe_cache: DescribeCacheCell,
}

impl KnowledgeBase {
    /// Creates an empty knowledge base with default options (paper-style
    /// answers: global one-level fallback, modified transformation). The
    /// observability sink defaults from the `QDK_TRACE` environment
    /// variable (unset/empty means disabled — see
    /// [`qdk_logic::obs::env_sink`]).
    pub fn new() -> Self {
        KnowledgeBase {
            opts: DescribeOptions::paper().with_sink(qdk_logic::obs::env_sink()),
            ..KnowledgeBase::default()
        }
    }

    /// Sets the retrieve evaluation strategy.
    pub fn with_strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Sets the describe options.
    pub fn with_describe_options(mut self, opts: DescribeOptions) -> Self {
        self.opts = opts;
        self
    }

    /// The extensional database.
    pub fn edb(&self) -> &Edb {
        &self.edb
    }

    /// The intensional database.
    pub fn idb(&self) -> &Idb {
        &self.idb
    }

    /// The declared key-prefix lengths.
    pub fn keys(&self) -> &HashMap<Sym, usize> {
        &self.keys
    }

    /// The describe options in effect.
    pub fn describe_options(&self) -> &DescribeOptions {
        &self.opts
    }

    /// The retrieve evaluation strategy in effect.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// Opens (creating if absent) a durable knowledge base stored at
    /// `dir` with default durability options, recovering whatever state a
    /// previous process left behind — the latest checkpoint plus the WAL
    /// tail, tolerating a torn final record. Every subsequent mutation is
    /// logged before it is applied.
    pub fn open_durable(dir: impl AsRef<Path>) -> Result<Self> {
        Self::open_durable_with(dir, DurabilityOptions::default())
    }

    /// [`Self::open_durable`] with explicit durability options.
    pub fn open_durable_with(dir: impl AsRef<Path>, opts: DurabilityOptions) -> Result<Self> {
        let Opened {
            durable,
            checkpoint,
            tail,
            report,
        } = Durable::open(dir.as_ref(), opts)?;
        let mut kb = KnowledgeBase::new();
        // Recovery applies through the ordinary mutation paths *before*
        // the durable handle is attached, so replay does not re-log (and
        // indexes, meters and fact-id order are rebuilt exactly as the
        // original mutations built them).
        if let Some(ckp) = checkpoint {
            kb.apply_checkpoint(ckp)?;
        }
        for rec in tail {
            kb.apply_op(rec.op)?;
        }
        kb.plan.invalidate();
        if kb.opts.sink.enabled()
            && (report.checkpointed + report.replayed > 0 || report.discarded_tail_bytes > 0)
        {
            kb.opts.sink.emit(Event::Recovery {
                replayed: report.checkpointed + report.replayed,
                discarded_bytes: report.discarded_tail_bytes,
            });
        }
        kb.durable = Some(Arc::new(Mutex::new(durable)));
        Ok(kb)
    }

    /// Restores a checkpoint snapshot through the same declaration and
    /// insertion paths live mutations take.
    fn apply_checkpoint(&mut self, ckp: CheckpointData) -> Result<()> {
        for rel in ckp.relations {
            let attrs: Vec<&str> = rel.attrs.iter().map(String::as_str).collect();
            self.edb.declare(&rel.name, &attrs)?;
            if let Some(k) = rel.key {
                self.keys.insert(Sym::new(&rel.name), k);
            }
            for tuple in rel.facts {
                self.edb.insert_tuple(&rel.name, tuple)?;
            }
        }
        for rule in ckp.rules {
            self.idb.add_rule(rule)?;
        }
        self.constraints.extend(ckp.constraints);
        Ok(())
    }

    /// Replays one logged mutation through the same code paths the
    /// original mutation took (so indexes and meters stay consistent).
    fn apply_op(&mut self, op: WalOp) -> Result<()> {
        match op {
            WalOp::Declare { name, attrs, key } => {
                let attrs: Vec<&str> = attrs.iter().map(String::as_str).collect();
                self.edb.declare(&name, &attrs)?;
                if let Some(k) = key {
                    self.keys.insert(Sym::new(&name), k);
                }
            }
            WalOp::AddFact { pred, tuple } => {
                self.edb.insert_tuple(&pred, tuple)?;
            }
            WalOp::AddRule(rule) => self.idb.add_rule(rule)?,
            WalOp::Retract { pred, tuple } => {
                self.edb.remove_tuple(&pred, &tuple)?;
            }
            WalOp::AddConstraint(c) => self.constraints.push(c),
            WalOp::Batch(ops) => {
                for op in ops {
                    self.apply_op(op)?;
                }
            }
        }
        Ok(())
    }

    /// Locks the durable handle, recovering from a poisoned lock (the
    /// store's own state is guarded by its file formats, not the mutex).
    fn durable_guard(d: &Arc<Mutex<Durable>>) -> MutexGuard<'_, Durable> {
        match d.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Appends `op` to the WAL if this KB is durable. Called *after*
    /// validation and *before* the in-memory apply — the WAL discipline:
    /// an op that reaches the log can no longer fail to apply. Inside a
    /// [`transaction`](Self::transaction) the op is buffered instead and
    /// reaches the WAL as part of the commit's single batch record.
    fn log(&mut self, op: WalOp) -> Result<()> {
        if self.durable.is_none() {
            return Ok(());
        }
        if let Some(buf) = &mut self.batch {
            buf.push(op);
            return Ok(());
        }
        if let Some(d) = &self.durable {
            let (lsn, bytes) = Self::durable_guard(d).append(&op)?;
            if self.opts.sink.enabled() {
                self.opts.sink.emit(Event::WalAppend { lsn: lsn.0, bytes });
            }
        }
        Ok(())
    }

    /// Takes a checkpoint if the configured op threshold has been
    /// crossed. Called after every applied mutation; a no-op while a
    /// transaction is open (a checkpoint must never capture the applied
    /// half of an uncommitted batch).
    fn maybe_checkpoint(&mut self) -> Result<()> {
        if self.batch.is_some() {
            return Ok(());
        }
        let due = match &self.durable {
            Some(d) => Self::durable_guard(d).should_checkpoint(),
            None => false,
        };
        if due {
            self.checkpoint()?;
        }
        Ok(())
    }

    /// Runs `f` as an atomic batch. Mutations inside the closure apply to
    /// this KB immediately (the closure observes its own writes) but
    /// their WAL ops are buffered and committed as **one**
    /// [`WalOp::Batch`] record when the closure returns `Ok` — the
    /// record-level CRC then makes the batch all-or-nothing on disk, so
    /// recovery replays either the whole transaction or none of it. If
    /// the closure (or the commit append) fails, the KB rolls back to its
    /// pre-transaction state (a cheap copy-on-write clone) and the WAL
    /// receives nothing.
    ///
    /// Nested calls flatten into the outer transaction.
    pub fn transaction<R>(&mut self, f: impl FnOnce(&mut Self) -> Result<R>) -> Result<R> {
        if self.batch.is_some() {
            return f(self);
        }
        let undo = self.clone();
        self.batch = Some(Vec::new());
        match f(self) {
            Ok(value) => {
                let ops = self.batch.take().unwrap_or_default();
                if !ops.is_empty() {
                    if let Err(e) = self.log(WalOp::Batch(ops)) {
                        *self = undo;
                        return Err(e);
                    }
                }
                self.maybe_checkpoint()?;
                Ok(value)
            }
            Err(e) => {
                *self = undo;
                Err(e)
            }
        }
    }

    /// Snapshots the current state and atomically publishes it as the
    /// checkpoint, truncating the WAL. Returns the covered LSN and the
    /// snapshot's size in bytes (`None` for an in-memory KB).
    pub fn checkpoint(&mut self) -> Result<Option<(Lsn, u64)>> {
        let Some(d) = &self.durable else {
            return Ok(None);
        };
        let data = self.snapshot();
        let (lsn, bytes) = Self::durable_guard(d).checkpoint(data)?;
        if self.opts.sink.enabled() {
            self.opts.sink.emit(Event::Checkpoint { lsn: lsn.0, bytes });
        }
        Ok(Some((lsn, bytes)))
    }

    /// The full declared state as checkpoint data: schemas (with keys),
    /// facts in per-relation insertion order, rules, constraints.
    fn snapshot(&self) -> CheckpointData {
        let mut relations = Vec::new();
        for schema in self.edb.catalog().iter() {
            let facts = self
                .edb
                .relation(schema.name.as_str())
                .map(|rel| rel.iter().cloned().collect())
                .unwrap_or_default();
            relations.push(RelationSnapshot {
                name: schema.name.as_str().to_string(),
                attrs: schema
                    .attrs
                    .iter()
                    .map(|a| a.as_str().to_string())
                    .collect(),
                key: self.keys.get(&schema.name).copied(),
                facts,
            });
        }
        CheckpointData {
            last_lsn: Lsn(0), // stamped by the durable handle
            relations,
            rules: self.idb.rules().to_vec(),
            constraints: self.constraints.clone(),
        }
    }

    /// True if this KB logs its mutations to a durable store.
    pub fn is_durable(&self) -> bool {
        self.durable.is_some()
    }

    /// What recovery found when this KB was opened (`None` for in-memory
    /// KBs).
    pub fn recovery_report(&self) -> Option<RecoveryReport> {
        self.durable
            .as_ref()
            .map(|d| Self::durable_guard(d).recovery_report().clone())
    }

    /// Lifetime durability counters (`None` for in-memory KBs).
    pub fn durability_metrics(&self) -> Option<DurabilityMetrics> {
        self.durable
            .as_ref()
            .map(|d| Self::durable_guard(d).metrics())
    }

    /// Forces the WAL to stable storage regardless of the fsync policy
    /// (a no-op for in-memory KBs).
    pub fn sync(&mut self) -> Result<()> {
        if let Some(d) = &self.durable {
            Self::durable_guard(d).sync()?;
        }
        Ok(())
    }

    /// Declares an EDB predicate. Validation happens before the
    /// declaration is logged or applied, so a failed declare leaves both
    /// the KB and the WAL untouched. The compiled plan survives — a new
    /// (necessarily empty) predicate cannot change any rule's schedule.
    pub fn declare(&mut self, name: &str, attrs: &[&str], key: Option<usize>) -> Result<()> {
        self.edb.validate_declare(name)?;
        self.log(WalOp::Declare {
            name: name.to_string(),
            attrs: attrs.iter().map(|a| a.to_string()).collect(),
            key,
        })?;
        self.edb.declare(name, attrs)?;
        if let Some(k) = key {
            self.keys.insert(Sym::new(name), k);
        }
        self.maybe_checkpoint()
    }

    /// Adds a fact (ground atom) to the EDB, under the validate → log →
    /// apply discipline: a fact that fails validation leaves the KB and
    /// the WAL untouched. The compiled plan is retained — answers flow
    /// from the live EDB, the plan only fixes the literal schedules (see
    /// [`PlanCache`]).
    pub fn add_fact(&mut self, atom: &qdk_logic::Atom) -> Result<bool> {
        self.edb.validate_fact(atom)?;
        if self.durable.is_some() {
            // Groundness was just validated, so the projection succeeds.
            if let Some(op) = WalOp::add_fact(atom) {
                self.log(op)?;
            }
        }
        let new = self.edb.insert_fact(atom)?;
        if new {
            if let Some(mut store) = self.maintained.take() {
                let obs = self.opts.sink.clone();
                let result = {
                    let _span = obs.span("maintain_insert", 0);
                    store.after_insert(&self.edb, &self.idb, atom.pred.as_str())
                };
                match result {
                    Ok(stats) => {
                        self.absorb_maintenance(&stats);
                        self.maintained = Some(store);
                    }
                    Err(e) => self.maintenance_lost("insert maintenance", e),
                }
            }
        }
        self.maybe_checkpoint()?;
        Ok(new)
    }

    /// Adds a rule to the IDB, under the same validate → log → apply
    /// discipline as [`Self::add_fact`] — plus plan invalidation: rule
    /// changes bump the rules generation, so every retrieve recompiles.
    /// The maintained store (when live) re-derives only the predicates
    /// depending on the new rule's head, and cached describe answers
    /// survive a rule that an existing same-head rule θ-subsumes (it can
    /// contribute no new theorems).
    pub fn add_rule(&mut self, rule: Rule) -> Result<()> {
        self.idb.validate_rule(&rule)?;
        let head = rule.head.pred.as_str().to_string();
        let redundant = self
            .idb
            .rules_for(&head)
            .any(|existing| redundancy::semantic_subsumes(existing, &rule, &[]));
        if self.durable.is_some() {
            self.log(WalOp::AddRule(rule.clone()))?;
        }
        self.idb.add_rule(rule)?;
        self.rules_gen = self.rules_gen.wrapping_add(1);
        self.opts.sink.counter("rules_invalidated", 1);
        self.describe_cache.guard().rule_added(&head, redundant);
        self.maintain_rules_changed(&head);
        self.maybe_checkpoint()
    }

    /// Retracts a stored fact; returns `true` if it was stored. Same
    /// discipline as [`Self::add_fact`]; the compiled plan is retained.
    /// When the maintained store is live, the retraction runs
    /// delete-and-rederive: doomed derived facts are computed against the
    /// pre-retraction state, removed with the tuple, and the ones with
    /// surviving alternative derivations are put back.
    pub fn retract_fact(&mut self, atom: &qdk_logic::Atom) -> Result<bool> {
        self.edb.validate_fact(atom)?;
        // DRed's deletion phase reads the *pre-retraction* state, so the
        // retraction is prepared before the tuple is logged or removed.
        let plan = self.prepare_retract_maintenance(atom);
        if self.durable.is_some() {
            if let Some(op) = WalOp::retract(atom) {
                self.log(op)?;
            }
        }
        let removed = self.edb.remove_fact(atom)?;
        if removed {
            self.apply_retract_maintenance(plan);
        }
        self.maybe_checkpoint()?;
        Ok(removed)
    }

    /// Decides how the maintained store will absorb retracting `atom`
    /// (see [`RetractPlan`]); read-only, called before the EDB changes.
    fn prepare_retract_maintenance(&self, atom: &qdk_logic::Atom) -> RetractPlan {
        let Some(store) = &self.maintained else {
            return RetractPlan::Untracked;
        };
        let pred = atom.pred.as_str();
        let Some(tuple) = ground_tuple(atom) else {
            return RetractPlan::Untracked;
        };
        if !self.edb.relation(pred).is_some_and(|r| r.contains(&tuple)) {
            return RetractPlan::Untracked;
        }
        if let Some(reason) = store.retract_fallback_reason(&self.edb, &self.idb, pred) {
            return RetractPlan::Recompute(reason);
        }
        match store.prepare_retract(&self.edb, pred, &tuple) {
            Ok(r) => RetractPlan::Ready(r),
            Err(e) => RetractPlan::Lost(e.to_string()),
        }
    }

    /// Applies the prepared retraction plan after the tuple left the EDB.
    fn apply_retract_maintenance(&mut self, plan: RetractPlan) {
        match plan {
            RetractPlan::Untracked | RetractPlan::Ready(Retraction::Clean) => {}
            RetractPlan::Recompute(reason) => {
                let Some(mut store) = self.maintained.take() else {
                    return;
                };
                let obs = self.opts.sink.clone();
                let result = {
                    let _span = obs.span("maintain_retract", 0);
                    store.recompute(&self.edb, &self.idb)
                };
                match result {
                    Ok(()) => {
                        self.absorb_maintenance(&MaintainStats {
                            recompute_reasons: vec![reason],
                            ..MaintainStats::default()
                        });
                        self.maintained = Some(store);
                    }
                    Err(e) => self.maintenance_lost("retract recompute", e),
                }
            }
            RetractPlan::Ready(Retraction::Prepared(doomed)) => {
                let Some(mut store) = self.maintained.take() else {
                    return;
                };
                let obs = self.opts.sink.clone();
                if obs.enabled() {
                    obs.counter("dred_overestimate", doomed.len() as u64);
                }
                let result = {
                    let _span = obs.span("maintain_retract", 0);
                    self.finish_retract(&mut store, doomed)
                };
                match result {
                    Ok(stats) => {
                        self.absorb_maintenance(&stats);
                        self.maintained = Some(store);
                    }
                    Err(e) => self.maintenance_lost("retract maintenance", e),
                }
            }
            RetractPlan::Lost(e) => self.maintenance_lost("retract maintenance", e),
        }
    }

    /// Borrow-splitting shim for DRed phases B/C.
    fn finish_retract(
        &self,
        store: &mut MaintainedStore,
        doomed: Doomed,
    ) -> qdk_engine::Result<MaintainStats> {
        store.finish_retract(&self.edb, &self.idb, doomed)
    }

    /// Adds an integrity constraint (logged like every other mutation —
    /// constraints are part of the durable state `dump()` serializes).
    /// Constraints shape knowledge answers, so they count as a rules
    /// change for plan-cache purposes.
    pub fn add_constraint(&mut self, c: Constraint) -> Result<()> {
        if self.durable.is_some() {
            self.log(WalOp::AddConstraint(c.clone()))?;
        }
        let preds: Vec<Sym> = c.body.iter().map(|a| a.pred.clone()).collect();
        self.constraints.push(c);
        self.rules_gen = self.rules_gen.wrapping_add(1);
        self.opts.sink.counter("rules_invalidated", 1);
        // Constraints prune describe answers, so cached entries whose
        // closure reaches a constrained predicate go stale. Retrieve
        // evaluation ignores constraints: the maintained store survives.
        self.describe_cache.guard().constraint_added(&preds);
        self.maybe_checkpoint()
    }

    /// Drops the cached compiled program; the next retrieve recompiles
    /// against a fresh cardinality snapshot. Fact mutations deliberately
    /// keep the plan (only join *order* can go stale, never answers);
    /// call this after bulk loads that change relative relation sizes
    /// enough to matter.
    pub fn invalidate_plan(&self) {
        self.plan.invalidate();
    }

    /// Builds the incrementally maintained derived-fact store if it is
    /// not already live: one full semi-naive evaluation, after which
    /// mutations update the derived state in place and bottom-up
    /// retrieves serve from it without re-running the fixpoint. The
    /// `Session::apply` facade calls this on first mutation; it is also
    /// callable directly for long-lived serving KBs.
    pub fn materialize_maintained(&mut self) -> Result<()> {
        if self.maintained.is_some() {
            return Ok(());
        }
        let plan = self.compiled_plan();
        self.maintained = Some(MaintainedStore::build(&self.edb, &self.idb, plan)?);
        Ok(())
    }

    /// True while the maintained derived-fact store is live.
    pub fn is_maintained(&self) -> bool {
        self.maintained.is_some()
    }

    /// The per-stratum generation counters of the maintained store
    /// (`None` when no store is live). Rule changes bump exactly the
    /// affected strata.
    pub fn stratum_generations(&self) -> Option<&[u64]> {
        self.maintained.as_ref().map(|s| s.stratum_generations())
    }

    /// Takes the maintenance counters accumulated since the last call
    /// (the facade folds these into its mutation reports).
    pub fn take_maintain_stats(&mut self) -> MaintainStats {
        std::mem::take(&mut self.maintain_stats)
    }

    /// Copies of the maintenance downgrades currently queued for the
    /// next retrieve's answer (the queue itself still drains there).
    pub fn pending_downgrades(&self) -> Vec<Downgrade> {
        self.pending.snapshot()
    }

    /// Cumulative describe-cache counters.
    pub fn describe_cache_stats(&self) -> qdk_core::CacheStats {
        self.describe_cache.guard().stats()
    }

    /// Attaches a fresh [`MetricsHub`] to this KB and starts aggregating:
    /// the hub's [`MetricsSink`] is fanned out *alongside* any sink
    /// already configured (a trace collector keeps collecting), so every
    /// span and counter the evaluation stacks already emit feeds the
    /// registry with no new instrumentation points. Returns the hub;
    /// clones and epoch snapshots taken after this call share it.
    pub fn enable_metrics(&mut self) -> Arc<MetricsHub> {
        let hub = Arc::new(MetricsHub::new());
        self.enable_metrics_with(Arc::clone(&hub));
        hub
    }

    /// [`Self::enable_metrics`] aggregating into an existing hub (e.g.
    /// the process-wide [`qdk_logic::metrics::global_hub`], or one shared
    /// across several KBs). A no-op if metrics are already enabled.
    pub fn enable_metrics_with(&mut self, hub: Arc<MetricsHub>) {
        if self.metrics.is_some() {
            return;
        }
        let sink: Arc<dyn qdk_logic::Sink> = Arc::new(MetricsSink::new(Arc::clone(&hub)));
        self.opts.sink = match self.opts.sink.handle() {
            Some(existing) => ObsSink::new(Arc::new(FanoutSink::new(vec![existing, sink]))),
            None => ObsSink::new(sink),
        };
        self.metrics = Some(hub);
    }

    /// The attached metrics hub, if [`Self::enable_metrics`] was called.
    pub fn metrics_hub(&self) -> Option<&Arc<MetricsHub>> {
        self.metrics.as_ref()
    }

    /// Polls the point-in-time subsystem gauges (EDB/IDB sizes, plan and
    /// describe-cache state, maintenance totals, WAL and checkpoint
    /// positions) into the registry, then returns a consistent snapshot
    /// of every aggregate. `None` until [`Self::enable_metrics`].
    pub fn metrics_snapshot(&self) -> Option<MetricsSnapshot> {
        let hub = self.metrics.as_ref()?;
        let reg = hub.registry();
        reg.gauge_set("rules_generation", self.rules_gen);
        reg.gauge_set("edb_facts", self.edb.fact_count() as u64);
        reg.gauge_set("idb_rules", self.idb.rules().len() as u64);
        reg.gauge_set("constraints", self.constraints.len() as u64);
        reg.gauge_set("pending_downgrades", self.pending.snapshot().len() as u64);
        let cache = self.describe_cache_stats();
        reg.gauge_set("describe_cache_hits", cache.hits);
        reg.gauge_set("describe_cache_misses", cache.misses);
        reg.gauge_set("describe_cache_evicted", cache.evicted);
        reg.gauge_set("describe_cache_survived", cache.survived);
        reg.gauge_set(
            "describe_cache_entries",
            self.describe_cache.guard().len() as u64,
        );
        reg.gauge_set("maintained", u64::from(self.maintained.is_some()));
        reg.gauge_set(
            "maintained_facts",
            self.maintained
                .as_ref()
                .map_or(0, |s| s.derived().len() as u64),
        );
        reg.gauge_set(
            "maintain_derived_added",
            self.maintain_total.derived_added as u64,
        );
        reg.gauge_set(
            "maintain_derived_deleted",
            self.maintain_total.derived_deleted as u64,
        );
        reg.gauge_set("maintain_rederived", self.maintain_total.rederived as u64);
        reg.gauge_set(
            "maintain_strata_invalidated",
            self.maintain_total.strata_invalidated as u64,
        );
        reg.gauge_set(
            "maintain_recomputes",
            self.maintain_total.recompute_reasons.len() as u64,
        );
        if let Some(m) = self.durability_metrics() {
            reg.gauge_set("wal_appended", m.wal_appends);
            reg.gauge_set("wal_appended_bytes", m.wal_bytes);
            reg.gauge_set("wal_fsyncs", m.wal_fsyncs);
            reg.gauge_set("wal_last_lsn", m.last_lsn);
            reg.gauge_set("checkpoints_taken", m.checkpoints);
            reg.gauge_set("last_checkpoint_bytes", m.last_checkpoint_bytes);
            reg.gauge_set("checkpoint_lsn_lag", m.checkpoint_lsn_lag());
        }
        if let Some(r) = self.recovery_report() {
            reg.gauge_set("recovery_replayed", r.checkpointed + r.replayed);
            reg.gauge_set("recovery_discarded_bytes", r.discarded_tail_bytes);
        }
        Some(reg.snapshot())
    }

    /// Folds one maintenance operation's counters in, surfacing its
    /// recompute fallbacks as recorded downgrades.
    fn absorb_maintenance(&mut self, stats: &MaintainStats) {
        for reason in &stats.recompute_reasons {
            self.pending.push(Downgrade::maintenance(reason.clone()));
        }
        self.maintain_stats.merge(stats);
        self.maintain_total.merge(stats);
        let obs = &self.opts.sink;
        if obs.enabled() {
            obs.counter("maintain_derived_added", stats.derived_added as u64);
            obs.counter("maintain_derived_deleted", stats.derived_deleted as u64);
            obs.counter("maintain_rederived", stats.rederived as u64);
            obs.counter(
                "maintain_strata_invalidated",
                stats.strata_invalidated as u64,
            );
            obs.counter("maintain_recompute", stats.recompute_reasons.len() as u64);
        }
    }

    /// Records a maintenance failure: the store is dropped (queries fall
    /// back to fixpoint evaluation) and the failure surfaces as a
    /// downgrade on the next answer rather than failing the mutation —
    /// the EDB/IDB change itself has already been validated and logged.
    fn maintenance_lost(&mut self, what: &str, e: impl std::fmt::Display) {
        self.maintained = None;
        let reason = format!("{what}: {e}");
        self.maintain_stats.recompute_reasons.push(reason.clone());
        self.maintain_total.recompute_reasons.push(reason.clone());
        self.pending.push(Downgrade::maintenance(reason));
        self.opts.sink.counter("maintain_lost", 1);
    }

    /// Re-derives the maintained predicates affected by a rule change on
    /// `head`, against the freshly compiled program.
    fn maintain_rules_changed(&mut self, head: &str) {
        let Some(mut store) = self.maintained.take() else {
            return;
        };
        let plan = self.compiled_plan();
        let obs = self.opts.sink.clone();
        let result = {
            let _span = obs.span("maintain_rules", 0);
            store.rules_changed(&self.edb, &self.idb, plan, head)
        };
        match result {
            Ok(stats) => {
                self.absorb_maintenance(&stats);
                self.maintained = Some(store);
            }
            Err(e) => self.maintenance_lost("rule maintenance", e),
        }
    }

    /// The maintained store, when `strategy` can serve from it: the
    /// bottom-up strategies compute exactly the maintained fixpoint, so
    /// the stored derived facts *are* their answer; the goal-directed
    /// strategies keep their own evaluation.
    fn maintained_for(&self, strategy: Strategy) -> Option<&MaintainedStore> {
        match strategy {
            Strategy::Naive | Strategy::SemiNaive => self.maintained.as_ref(),
            _ => None,
        }
    }

    /// Moves queued maintenance downgrades onto `answer`, ahead of any
    /// evaluation downgrades (they happened first).
    fn surface_pending(&self, answer: &mut qdk_engine::DataAnswer, obs: &ObsSink) {
        let drained = self.pending.drain();
        if drained.is_empty() {
            return;
        }
        obs.counter("downgrade", drained.len() as u64);
        answer.downgrades.splice(0..0, drained);
    }

    /// Executes one parsed statement.
    pub fn execute(&mut self, stmt: &Statement) -> Result<Answer> {
        match stmt {
            Statement::Declare { name, attrs, key } => {
                let attr_refs: Vec<&str> = attrs.iter().map(String::as_str).collect();
                self.declare(name, &attr_refs, *key)?;
                Ok(Answer::Ack(format!("declared {name}/{}", attrs.len())))
            }
            Statement::Clause(rule) => {
                if rule.is_fact() && self.edb.is_edb_predicate(rule.head.pred.as_str()) {
                    let new = self.add_fact(&rule.head)?;
                    Ok(Answer::Ack(if new {
                        format!("stored {}", rule.head)
                    } else {
                        format!("already stored {}", rule.head)
                    }))
                } else {
                    self.add_rule(rule.clone())?;
                    Ok(Answer::Ack(format!("defined rule {rule}")))
                }
            }
            Statement::Constraint(c) => {
                self.add_constraint(c.clone())?;
                Ok(Answer::Ack(format!("added constraint {c}")))
            }
            Statement::Retract(atom) => {
                let removed = self.retract_fact(atom)?;
                Ok(Answer::Ack(if removed {
                    format!("retracted {atom}")
                } else {
                    format!("not stored: {atom}")
                }))
            }
            Statement::Show(kind) => {
                use std::fmt::Write;
                let mut out = String::new();
                // Writing into a String cannot fail; the results are
                // discarded rather than unwrapped.
                match kind {
                    crate::ast::ShowKind::Predicates => {
                        for schema in self.edb.catalog().iter() {
                            let count = self
                                .edb
                                .relation(schema.name.as_str())
                                .map_or(0, |r| r.len());
                            let _ = write!(out, "{schema}");
                            if let Some(k) = self.keys.get(&schema.name) {
                                let _ = write!(out, " key {k}");
                            }
                            let _ = writeln!(out, " — {count} facts");
                        }
                    }
                    crate::ast::ShowKind::Rules => {
                        for rule in self.idb.rules() {
                            let _ = writeln!(out, "{rule}");
                        }
                    }
                    crate::ast::ShowKind::Constraints => {
                        for c in &self.constraints {
                            let _ = writeln!(out, "{c}");
                        }
                    }
                }
                Ok(Answer::Ack(out.trim_end().to_string()))
            }
            Statement::Explain(d) => {
                let answer = self.describe(d)?;
                let mut text = String::new();
                for t in &answer.theorems {
                    text.push_str(&t.explain());
                }
                if answer.hypothesis_contradicts_idb {
                    text.push_str("the hypothesis contradicts the IDB\n");
                }
                if text.is_empty() {
                    text.push_str("no theorems derivable\n");
                }
                Ok(Answer::Ack(text.trim_end().to_string()))
            }
            Statement::Retrieve(r) => Ok(Answer::Data(self.retrieve(r)?)),
            Statement::Describe(d) => Ok(Answer::Knowledge(self.describe(d)?)),
            Statement::DescribeNecessary(d) => Ok(Answer::Knowledge(
                extensions::describe_necessary(&self.idb, d, &self.opts)?,
            )),
            Statement::DescribeDisjunctive { subject, disjuncts } => Ok(Answer::Knowledge(
                extensions::describe_disjunctive(&self.idb, subject, disjuncts, &self.opts)?,
            )),
            Statement::DescribeWithout { subject, negated } => Ok(Answer::Necessity(
                extensions::describe_without(&self.idb, subject, negated, &self.opts)?,
            )),
            Statement::DescribePossible { hypothesis } => {
                Ok(Answer::Possibility(extensions::describe_possible(
                    &self.idb,
                    hypothesis,
                    &self.keys,
                    &self.constraints,
                    &self.opts,
                )?))
            }
            Statement::DescribeWildcard { hypothesis } => Ok(Answer::Wildcard(
                extensions::describe_wildcard(&self.idb, hypothesis, &self.opts)?,
            )),
            Statement::Compare { first, second } => Ok(Answer::Comparison(Box::new(
                compare::compare(&self.idb, first, second, &self.opts)?,
            ))),
        }
    }

    /// Parses and executes one statement.
    pub fn run(&mut self, src: &str) -> Result<Answer> {
        let stmt = parse_statement(src)?;
        self.execute(&stmt)
    }

    /// Parses and executes a script, returning every answer.
    pub fn load(&mut self, src: &str) -> Result<Vec<Answer>> {
        let stmts = parse_script(src)?;
        stmts.iter().map(|s| self.execute(s)).collect()
    }

    /// Evaluates a `retrieve` statement (data query, §3.1). The same
    /// resource limits, cancellation token and worker count that govern
    /// `describe` bound the engine evaluation.
    pub fn retrieve(&self, r: &Retrieve) -> Result<qdk_engine::DataAnswer> {
        let mut eval = qdk_engine::EvalOptions::with_limits(self.opts.limits);
        eval.cancel = self.opts.cancel.clone();
        eval.parallelism = self.opts.parallelism;
        eval.sink = self.opts.sink.clone();
        self.retrieve_with_options(r, self.strategy, eval)
    }

    /// [`Self::retrieve`] with per-query strategy and evaluation options
    /// (the hook the `Session` facade's request overrides go through). The
    /// cached compiled program is reused; when the maintained store is
    /// live and the strategy is bottom-up, the answer is projected
    /// straight from the maintained derived facts — no fixpoint runs.
    #[doc(hidden)]
    pub fn retrieve_with_options(
        &self,
        r: &Retrieve,
        strategy: Strategy,
        eval: qdk_engine::EvalOptions,
    ) -> Result<qdk_engine::DataAnswer> {
        let obs = eval.sink.clone();
        if let Some(store) = self.maintained_for(strategy) {
            let _span = obs.span("execute", 0);
            obs.counter("maintained_serve", 1);
            let mut answer = query::retrieve_precomputed(&self.edb, &self.idb, store.derived(), r)?;
            self.surface_pending(&mut answer, &obs);
            return Ok(answer);
        }
        let plan = {
            let _span = obs.span("plan", 0);
            let (plan, hit) = self
                .plan
                .get_or_compile(self.rules_gen, &self.idb, &self.edb);
            if obs.enabled() {
                let name = if hit {
                    "plan_cache_hit"
                } else {
                    "plan_cache_miss"
                };
                obs.counter(name, 1);
            }
            plan
        };
        let _span = obs.span("execute", 0);
        let mut answer = query::retrieve_compiled(&self.edb, &self.idb, &plan, r, strategy, eval)?;
        self.surface_pending(&mut answer, &obs);
        Ok(answer)
    }

    /// [`Self::retrieve_with_options`] against an already-resolved
    /// compiled program, bypassing the plan cache (and its lock)
    /// entirely. This is the snapshot read path: an epoch snapshot pins
    /// the plan next to the data it was compiled for, so its readers
    /// never consult the cache. The caller guarantees `plan` was compiled
    /// from this KB's IDB.
    #[doc(hidden)]
    pub fn retrieve_with_plan(
        &self,
        plan: &ProgramPlan,
        r: &Retrieve,
        strategy: Strategy,
        eval: qdk_engine::EvalOptions,
    ) -> Result<qdk_engine::DataAnswer> {
        let obs = eval.sink.clone();
        if let Some(store) = self.maintained_for(strategy) {
            let _span = obs.span("execute", 0);
            obs.counter("maintained_serve", 1);
            let mut answer = query::retrieve_precomputed(&self.edb, &self.idb, store.derived(), r)?;
            self.surface_pending(&mut answer, &obs);
            return Ok(answer);
        }
        if obs.enabled() {
            obs.counter("plan_cache_hit", 1);
        }
        let _span = obs.span("execute", 0);
        let mut answer = query::retrieve_compiled(&self.edb, &self.idb, plan, r, strategy, eval)?;
        self.surface_pending(&mut answer, &obs);
        Ok(answer)
    }

    /// The compiled program for the current rules generation, filling the
    /// cache if needed (without emitting query counters).
    pub fn compiled_plan(&self) -> Arc<ProgramPlan> {
        self.plan
            .get_or_compile(self.rules_gen, &self.idb, &self.edb)
            .0
    }

    /// Prepares this KB for an epoch publish and returns the plan the
    /// snapshot should pin: adopt composite-index demand readers
    /// expressed on the previous epoch (`prev`), resolve the compiled
    /// plan, prebuild the composite indexes its scans will probe, promote
    /// everything into the lock-free sets, and force the WAL to stable
    /// storage so a published epoch is always durable.
    pub(crate) fn prepare_publish(
        &mut self,
        prev: Option<&KnowledgeBase>,
    ) -> Result<Arc<ProgramPlan>> {
        if let Some(prev) = prev {
            self.edb.adopt_index_demand(prev.edb());
        }
        let plan = self.compiled_plan();
        for (pred, cols) in plan.composite_requests() {
            // Requests against derived predicates have no stored relation
            // and are skipped inside.
            self.edb.ensure_composite(pred.as_str(), &cols);
        }
        self.edb.promote_indexes();
        self.sync()?;
        Ok(plan)
    }

    /// True if a compiled program for the *current* rules generation is
    /// cached — i.e. the next query will hit, not recompile (test hook).
    #[cfg(test)]
    fn plan_cached(&self) -> bool {
        self.plan
            .slot()
            .as_ref()
            .is_some_and(|(gen, _)| *gen == self.rules_gen)
    }

    /// Evaluates a `describe` statement (knowledge query, §3.2),
    /// respecting declared integrity constraints: theorems whose bodies
    /// the constraints forbid are discarded.
    pub fn describe(&self, d: &Describe) -> Result<qdk_core::DescribeAnswer> {
        self.describe_with_options(d, &self.opts)
    }

    /// [`Self::describe`] with per-query options (the hook the `Session`
    /// facade's request overrides go through). Declared integrity
    /// constraints are still respected. Complete, unbounded answers are
    /// cached by subject signature and survive fact churn untouched (a
    /// describe answer never reads the EDB); rule and constraint changes
    /// evict per predicate closure.
    #[doc(hidden)]
    pub fn describe_with_options(
        &self,
        d: &Describe,
        opts: &DescribeOptions,
    ) -> Result<qdk_core::DescribeAnswer> {
        let _span = opts.sink.span("execute", 0);
        let key = describe_cache_key(d, opts);
        if let Some(k) = &key {
            if let Some(hit) = self.describe_cache.guard().get(d.subject.pred.as_str(), k) {
                opts.sink.counter("describe_cache_hit", 1);
                return Ok(hit);
            }
            opts.sink.counter("describe_cache_miss", 1);
        }
        let answer = describe::describe_with_constraints(&self.idb, &self.constraints, d, opts)?;
        if let Some(k) = key {
            if !answer.is_truncated() {
                let closure = self.describe_closure(d);
                self.describe_cache.guard().insert(
                    d.subject.pred.as_str(),
                    k,
                    closure,
                    answer.clone(),
                );
            }
        }
        Ok(answer)
    }

    /// Every predicate `d`'s answer can depend on: the rule-graph closure
    /// of the subject plus of each hypothesis predicate (hypothesis
    /// literals surface in theorem bodies, so constraints over them prune
    /// answers too).
    fn describe_closure(&self, d: &Describe) -> Vec<Sym> {
        let graph = DependencyGraph::build(&self.idb);
        let mut closure = vec![d.subject.pred.clone()];
        let mut cover = |preds: Vec<Sym>| {
            for p in preds {
                if !closure.contains(&p) {
                    closure.push(p);
                }
            }
        };
        cover(graph.reachable_from(d.subject.pred.as_str()));
        for lit in &d.hypothesis {
            cover(vec![lit.atom.pred.clone()]);
            cover(graph.reachable_from(lit.atom.pred.as_str()));
        }
        closure
    }

    /// The declared integrity constraints.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Serializes the knowledge base as a script that [`Self::load`]
    /// restores exactly: declarations (with keys), stored facts, IDB
    /// rules, and integrity constraints, in that order.
    pub fn dump(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for schema in self.edb.catalog().iter() {
            let _ = write!(out, "predicate {schema}");
            if let Some(k) = self.keys.get(&schema.name) {
                let _ = write!(out, " key {k}");
            }
            out.push_str(".\n");
        }
        for schema in self.edb.catalog().iter() {
            if let Some(rel) = self.edb.relation(schema.name.as_str()) {
                for tuple in rel.iter() {
                    let vals: Vec<String> =
                        tuple.values().iter().map(ToString::to_string).collect();
                    let _ = writeln!(out, "{}({}).", schema.name, vals.join(", "));
                }
            }
        }
        for rule in self.idb.rules() {
            let _ = writeln!(out, "{rule}");
        }
        for c in &self.constraints {
            let _ = writeln!(out, "{c}");
        }
        out
    }
}

/// The describe-cache key for `d` under `opts`, `None` when the
/// combination is not cacheable: bounded or cancellable evaluations can
/// be cut short by wall-clock-dependent limits, so their answers never
/// enter the cache.
fn describe_cache_key(d: &Describe, opts: &DescribeOptions) -> Option<String> {
    if opts.cancel.is_some() || opts.limits != qdk_core::ResourceLimits::default() {
        return None;
    }
    Some(format!(
        "{d}|fb={:?}|tr={:?}|untyped={}|simp={}|rr={}",
        opts.fallback,
        opts.transform,
        opts.untyped_rule_limit,
        opts.simplify_comparisons,
        opts.remove_redundant
    ))
}

/// Projects a ground atom onto its stored row; `None` if any argument is
/// a variable (callers validate groundness first).
fn ground_tuple(atom: &qdk_logic::Atom) -> Option<Tuple> {
    let mut values = Vec::with_capacity(atom.args.len());
    for t in &atom.args {
        match t {
            Term::Const(c) => values.push(c.clone()),
            Term::Var(_) => return None,
        }
    }
    Some(Tuple::new(values))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mini_kb() -> KnowledgeBase {
        let mut kb = KnowledgeBase::new();
        kb.load(
            "predicate student(Sname, Major, Gpa) key 1.\n\
             predicate enroll(Sname, Ctitle).\n\
             student(ann, math, 3.9).\n\
             student(bob, math, 3.5).\n\
             enroll(ann, databases).\n\
             honor(X) :- student(X, Y, Z), Z > 3.7.",
        )
        .unwrap();
        kb
    }

    #[test]
    fn transaction_commits_or_rolls_back_atomically() {
        let mut kb = mini_kb();
        // Commit: the closure observes its own writes, and they stick.
        let n = kb
            .transaction(|kb| {
                kb.run("student(cara, math, 3.95).")?;
                kb.run("enroll(cara, databases).")?;
                Ok(kb.edb().fact_count())
            })
            .unwrap();
        assert_eq!(n, 5);
        assert_eq!(kb.edb().fact_count(), 5);
        // Rollback: an error anywhere undoes every write in the batch,
        // including rule additions.
        let before = kb.dump();
        let err = kb.transaction(|kb| {
            kb.run("student(dan, physics, 2.8).")?;
            kb.run("star(X) :- student(X, M, G), G > 3.8.")?;
            kb.run("this is not a statement.")?;
            Ok(())
        });
        assert!(err.is_err());
        assert_eq!(kb.dump(), before);
        assert_eq!(kb.edb().fact_count(), 5);
        assert_eq!(kb.idb().len(), 1);
        // Nested transactions flatten into the outer one.
        kb.transaction(|kb| {
            kb.transaction(|kb| kb.run("enroll(bob, algebra).").map(|_| ()))?;
            Ok(())
        })
        .unwrap();
        assert_eq!(kb.edb().fact_count(), 6);
    }

    #[test]
    fn twin_statements_through_one_instrument() {
        let mut kb = mini_kb();
        // "Retrieve the honor students" — data.
        let data = kb.run("retrieve honor(X).").unwrap();
        let d = data.as_data().unwrap();
        assert_eq!(d.len(), 1);
        assert!(d.contains_row(&["ann"]));
        // "Describe the honor students" — knowledge.
        let knowledge = kb.run("describe honor(X).").unwrap();
        let k = knowledge.as_knowledge().unwrap();
        assert_eq!(
            k.rendered(),
            vec!["honor(X) ← student(X, Y, Z) ∧ (Z > 3.7)"]
        );
    }

    #[test]
    fn facts_go_to_edb_rules_to_idb() {
        let kb = mini_kb();
        assert_eq!(kb.edb().fact_count(), 3);
        assert_eq!(kb.idb().len(), 1);
        assert_eq!(kb.keys().get("student"), Some(&1));
    }

    #[test]
    fn ground_idb_fact_is_a_rule() {
        // A ground clause whose predicate is *not* declared becomes an IDB
        // fact-rule rather than an EDB fact.
        let mut kb = mini_kb();
        kb.run("special(ann).").unwrap();
        assert!(kb.idb().defines("special"));
    }

    #[test]
    fn duplicate_fact_acknowledged() {
        let mut kb = mini_kb();
        let a = kb.run("student(ann, math, 3.9).").unwrap();
        assert!(a.to_string().contains("already stored"));
    }

    #[test]
    fn constraints_are_recorded() {
        let mut kb = mini_kb();
        kb.run(":- honor(X), suspended(X).").unwrap();
        assert_eq!(kb.constraints().len(), 1);
    }

    #[test]
    fn retract_show_and_explain() {
        let mut kb = mini_kb();
        // Retract flips the data answer.
        assert_eq!(
            kb.run("retrieve honor(X).")
                .unwrap()
                .as_data()
                .unwrap()
                .len(),
            1
        );
        let a = kb.run("retract student(ann, math, 3.9).").unwrap();
        assert!(a.to_string().contains("retracted"));
        assert!(kb
            .run("retrieve honor(X).")
            .unwrap()
            .as_data()
            .unwrap()
            .is_empty());
        // Retracting again reports absence.
        let a = kb.run("retract student(ann, math, 3.9).").unwrap();
        assert!(a.to_string().contains("not stored"));

        // Show lists the catalog, the rules and the constraints.
        let preds = kb.run("show predicates.").unwrap().to_string();
        assert!(
            preds.contains("student(Sname, Major, Gpa) key 1"),
            "{preds}"
        );
        assert!(preds.contains("facts"), "{preds}");
        let rules = kb.run("show rules.").unwrap().to_string();
        assert!(rules.contains("honor(X) :-"), "{rules}");
        kb.run(":- honor(X), suspended(X).").unwrap();
        let cons = kb.run("show constraints.").unwrap().to_string();
        assert!(cons.contains("suspended"), "{cons}");

        // Explain renders theorems with their derivations.
        let ex = kb.run("explain honor(X).").unwrap().to_string();
        assert!(ex.contains("honor(X) ←"), "{ex}");
        assert!(ex.contains("definition:"), "{ex}");
    }

    #[test]
    fn dump_load_roundtrip() {
        let mut kb = crate::datasets::university_extended();
        let dumped = kb.dump();
        let mut restored = KnowledgeBase::new();
        restored.load(&dumped).unwrap();
        assert_eq!(restored.edb().fact_count(), kb.edb().fact_count());
        assert_eq!(restored.idb().len(), kb.idb().len());
        assert_eq!(restored.constraints().len(), kb.constraints().len());
        assert_eq!(restored.keys().len(), kb.keys().len());
        // Queries agree on the restored copy.
        let q = "retrieve honor(X) where enroll(X, databases).";
        let a = kb.run(q).unwrap();
        let b = restored.run(q).unwrap();
        assert_eq!(a.as_data().unwrap().sorted(), b.as_data().unwrap().sorted());
        let q = "describe can_ta(X, Y) where honor(X) and teach(susan, Y).";
        let a = kb.run(q).unwrap();
        let b = restored.run(q).unwrap();
        assert_eq!(
            a.as_knowledge().unwrap().rendered(),
            b.as_knowledge().unwrap().rendered()
        );
        // Dump is idempotent.
        assert_eq!(restored.dump(), dumped);
    }

    #[test]
    fn plan_cache_fills_on_query_and_survives_fact_mutations() {
        let mut kb = mini_kb();
        assert!(!kb.plan_cached());
        kb.run("retrieve honor(X).").unwrap();
        assert!(kb.plan_cached());
        // Reads keep the cache.
        kb.run("show rules.").unwrap();
        assert!(kb.plan_cached());
        // Fact-only mutations keep it too: compilation depends on rules,
        // not data, so declares/asserts/retracts never force a recompile.
        kb.run("student(cara, math, 3.95).").unwrap();
        assert!(kb.plan_cached());
        kb.run("retract student(cara, math, 3.95).").unwrap();
        kb.declare("lab", &["name"], None).unwrap();
        assert!(kb.plan_cached());
        // Rule and constraint changes advance the generation: the cached
        // entry is stale and the next query recompiles.
        kb.run("star(X) :- student(X, M, G), G > 3.8.").unwrap();
        assert!(!kb.plan_cached());
        kb.run("retrieve honor(X).").unwrap();
        assert!(kb.plan_cached());
        kb.run("inconsistent :- honor(X), star(X).").unwrap();
        assert!(!kb.plan_cached());
    }

    #[test]
    fn plan_cache_counters_expose_retention() {
        use qdk_logic::obs::{CollectSink, Event, ObsSink};
        let mut kb = mini_kb();
        // Run one traced retrieve and report which plan-cache counter fired.
        let traced = |kb: &KnowledgeBase| {
            let Statement::Retrieve(r) =
                crate::parser::parse_statement("retrieve honor(X).").unwrap()
            else {
                panic!("expected retrieve");
            };
            let collect = Arc::new(CollectSink::new());
            let eval = qdk_engine::EvalOptions {
                sink: ObsSink::new(collect.clone()),
                ..Default::default()
            };
            kb.retrieve_with_options(&r, kb.strategy(), eval).unwrap();
            let hits = |wanted: &str| {
                collect
                    .events()
                    .iter()
                    .filter(|e| matches!(e, Event::Counter { name, .. } if *name == wanted))
                    .count()
            };
            (hits("plan_cache_hit"), hits("plan_cache_miss"))
        };
        // First query compiles, second hits.
        assert_eq!(traced(&kb), (0, 1));
        assert_eq!(traced(&kb), (1, 0));
        // A fact write does not spend the cache...
        kb.run("student(cara, math, 3.95).").unwrap();
        assert_eq!(traced(&kb), (1, 0));
        // ...but a rule write does.
        kb.run("star(X) :- student(X, M, G), G > 3.8.").unwrap();
        assert_eq!(traced(&kb), (0, 1));
    }

    #[test]
    fn answers_track_mutations_through_the_cache() {
        let mut kb = mini_kb();
        // Fill the cache, then mutate facts and rules: answers must
        // reflect every change, never a stale compilation.
        assert_eq!(
            kb.run("retrieve honor(X).")
                .unwrap()
                .as_data()
                .unwrap()
                .len(),
            1
        );
        kb.run("student(cara, math, 3.95).").unwrap();
        assert_eq!(
            kb.run("retrieve honor(X).")
                .unwrap()
                .as_data()
                .unwrap()
                .len(),
            2
        );
        kb.run("star(X) :- student(X, M, G), G > 3.8.").unwrap();
        let stars = kb.run("retrieve star(X).").unwrap();
        let stars = stars.as_data().unwrap();
        assert_eq!(stars.len(), 2);
        assert!(stars.contains_row(&["ann"]) && stars.contains_row(&["cara"]));
        kb.run("retract student(cara, math, 3.95).").unwrap();
        assert_eq!(
            kb.run("retrieve star(X).")
                .unwrap()
                .as_data()
                .unwrap()
                .len(),
            1
        );
    }

    #[test]
    fn describe_respects_constraints() {
        let mut kb = KnowledgeBase::new();
        kb.load(
            "predicate demographic(S, N, M) key 1.\n\
             foreign(X) :- demographic(X, N, M), N != usa.\n\
             unmarried(X) :- demographic(X, N, single).\n\
             visa_ok(X) :- foreign(X), unmarried(X).\n\
             visa_ok(X) :- foreign(X), sponsor(X).\n\
             :- foreign(X), unmarried(X).",
        )
        .unwrap();
        let a = kb.run("describe visa_ok(X).").unwrap();
        let k = a.as_knowledge().unwrap();
        // The foreign ∧ unmarried definition is forbidden by the
        // constraint; only the sponsor rule survives.
        assert_eq!(k.len(), 1, "{k}");
        assert!(k.rendered()[0].contains("sponsor"), "{k}");
    }

    #[test]
    fn disjunctive_describe_through_language() {
        let mut kb = mini_kb();
        let a = kb
            .run("describe honor(X) where student(X, math, V) and V > 3.8 or student(X, M, W) and W > 3.9.")
            .unwrap();
        // Both disjuncts entail the GPA bound: the unconditional theorem
        // survives the intersection.
        assert_eq!(a.as_knowledge().unwrap().rendered(), vec!["honor(X)"]);
    }

    #[test]
    fn errors_propagate() {
        let mut kb = mini_kb();
        assert!(kb.run("retrieve honor(X) where").is_err()); // parse
        assert!(kb.run("describe student(X, Y, Z).").is_err()); // not IDB
        assert!(kb.run("enroll(ann).").is_err()); // arity
    }
}
