//! Language-layer errors.

use std::fmt;

/// Any error the unified instrument can raise.
#[derive(Clone, Debug, PartialEq)]
pub enum LangError {
    /// A parse error in a statement.
    Parse(qdk_logic::ParseError),
    /// A storage error (declarations, facts).
    Storage(qdk_storage::StorageError),
    /// An engine error (retrieve evaluation).
    Engine(qdk_engine::EngineError),
    /// A describe-engine error (knowledge queries).
    Describe(qdk_core::DescribeError),
    /// A durability error (write-ahead log, checkpoint, recovery).
    Durability(qdk_durability::DurabilityError),
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LangError::Parse(e) => write!(f, "{e}"),
            LangError::Storage(e) => write!(f, "{e}"),
            LangError::Engine(e) => write!(f, "{e}"),
            LangError::Describe(e) => write!(f, "{e}"),
            LangError::Durability(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for LangError {}

impl From<qdk_logic::ParseError> for LangError {
    fn from(e: qdk_logic::ParseError) -> Self {
        LangError::Parse(e)
    }
}

impl From<qdk_storage::StorageError> for LangError {
    fn from(e: qdk_storage::StorageError) -> Self {
        LangError::Storage(e)
    }
}

impl From<qdk_engine::EngineError> for LangError {
    fn from(e: qdk_engine::EngineError) -> Self {
        LangError::Engine(e)
    }
}

impl From<qdk_core::DescribeError> for LangError {
    fn from(e: qdk_core::DescribeError) -> Self {
        LangError::Describe(e)
    }
}

impl From<qdk_durability::DurabilityError> for LangError {
    fn from(e: qdk_durability::DurabilityError) -> Self {
        LangError::Durability(e)
    }
}

/// Result alias for language operations.
pub type Result<T> = std::result::Result<T, LangError>;
