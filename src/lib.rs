//! # Querying Database Knowledge
//!
//! A full Rust reproduction of *Querying Database Knowledge* (Amihai
//! Motro and Qiuhui Yuan, SIGMOD 1990): a deductive database whose query
//! language has **twin statements** — `retrieve` for data queries and
//! `describe` for *knowledge* queries, which answer with theorems about
//! what a concept means under a hypothesis rather than with data.
//!
//! ```
//! use qdk::KnowledgeBase;
//!
//! let mut kb = KnowledgeBase::new();
//! kb.load(
//!     "predicate student(Sname, Major, Gpa) key 1.
//!      student(ann, math, 3.9).
//!      student(bob, math, 3.5).
//!      honor(X) :- student(X, Y, Z), Z > 3.7.",
//! ).unwrap();
//!
//! // Who are the honor students?  (data)
//! let data = kb.run("retrieve honor(X).").unwrap();
//! assert!(data.as_data().unwrap().contains_row(&["ann"]));
//!
//! // What does it take to be an honor student?  (knowledge)
//! let knowledge = kb.run("describe honor(X).").unwrap();
//! assert_eq!(
//!     knowledge.as_knowledge().unwrap().rendered(),
//!     vec!["honor(X) ← student(X, Y, Z) ∧ (Z > 3.7)"],
//! );
//! ```
//!
//! The workspace layers:
//!
//! * [`logic`] — terms, Horn clauses, unification, θ-subsumption, parsing,
//!   and the shared resource [`Governor`] that bounds every evaluation
//!   (deadline, work budget, depth, fact count, cancellation);
//! * [`storage`] — the extensional database (indexed relations, built-in
//!   comparisons, catalog);
//! * [`engine`] — the deductive `retrieve` engine (dependency analysis,
//!   naive / semi-naive / goal-directed evaluation, stratified negation);
//! * [`core`] — the **describe engine**, the paper's contribution:
//!   Algorithm 1 (derivation trees + hypothesis identification), the
//!   Imielinski rule transformation, Algorithm 2 (tags + typing), the §6
//!   extensions and `compare`;
//! * [`lang`] — the unified statement language and [`KnowledgeBase`]
//!   facade re-exported at the top level.
//!
//! For programmatic use, the [`Session`] facade wraps a [`KnowledgeBase`]
//! behind twin calls with one [`Request`] shape (subject, hypothesis,
//! strategy, limits, parallelism) and one [`Error`] surface:
//!
//! ```
//! use qdk::{Request, Session};
//!
//! let mut session = Session::new();
//! session.load(
//!     "predicate student(Sname, Major, Gpa) key 1.
//!      student(ann, math, 3.9).
//!      honor(X) :- student(X, Y, Z), Z > 3.7.",
//! ).unwrap();
//! let data = session.retrieve(Request::subject("honor(X)")).unwrap();
//! assert!(data.as_data().unwrap().contains_row(&["ann"]));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(clippy::print_stderr, clippy::print_stdout)]

mod error;
mod mutation;
mod session;
mod trace;

pub use qdk_core as core;
pub use qdk_durability as durability;
pub use qdk_engine as engine;
pub use qdk_lang as lang;
pub use qdk_logic as logic;
pub use qdk_storage as storage;

pub use error::{Error, Result};
pub use mutation::{Applied, Mutation};
pub use session::{Request, Response, Session, SnapshotSession};
pub use trace::{QueryTrace, TraceSpan};

pub use qdk_logic::metrics;
pub use qdk_logic::metrics::{
    HistogramSnapshot, MetricsHub, MetricsRegistry, MetricsSink, MetricsSnapshot,
};
pub use qdk_logic::obs;
pub use qdk_logic::obs::{CollectSink, Event, FanoutSink, ObsSink, Sink};

pub use qdk_core::CacheStats;
pub use qdk_core::{
    compare::CompareAnswer, CancelToken, Completeness, Describe, DescribeAnswer, DescribeOptions,
    Exhausted, FallbackPolicy, Governor, Resource, ResourceLimits, Theorem, TransformPolicy,
};
pub use qdk_durability::{
    DurabilityError, DurabilityMetrics, DurabilityOptions, FsyncPolicy, Lsn, RecoveryReport,
};
pub use qdk_engine::{DataAnswer, Downgrade, EvalOptions, MaintainStats, Mode, Retrieve, Strategy};
pub use qdk_lang::{datasets, Answer, KnowledgeBase, LangError};
pub use qdk_logic::Parallelism;
pub use qdk_storage::EpochId;
