//! The consolidated crate-level error surface.
//!
//! Every layer keeps its own precise error type (`EngineError`,
//! `DescribeError`, `ParseError`, `StorageError` — all still public for
//! layer-level callers and tests), but [`Session`](crate::Session) callers
//! match on this one enum. `#[non_exhaustive]` so future layers can add
//! variants without a breaking release.

use std::fmt;

/// Any error the `qdk` facade can raise.
#[non_exhaustive]
#[derive(Clone, Debug, PartialEq)]
pub enum Error {
    /// A parse error (statements, atoms, hypothesis conjunctions).
    Parse(qdk_logic::ParseError),
    /// A storage error (declarations, facts, arity mismatches).
    Storage(qdk_storage::StorageError),
    /// A retrieve-engine error (evaluation, stratification, exhaustion).
    Engine(qdk_engine::EngineError),
    /// A describe-engine error (knowledge queries, transformation).
    Describe(qdk_core::DescribeError),
    /// A durability error (write-ahead log, checkpoint, recovery).
    Durability(qdk_durability::DurabilityError),
}

impl Error {
    /// The structured exhaustion diagnostic, when the error is a resource
    /// trip from either evaluation stack.
    pub fn exhausted(&self) -> Option<qdk_logic::Exhausted> {
        match self {
            Error::Engine(qdk_engine::EngineError::Exhausted(e)) => Some(*e),
            Error::Describe(qdk_core::DescribeError::Exhausted(e)) => Some(*e),
            _ => None,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse(e) => write!(f, "{e}"),
            Error::Storage(e) => write!(f, "{e}"),
            Error::Engine(e) => write!(f, "{e}"),
            Error::Describe(e) => write!(f, "{e}"),
            Error::Durability(e) => write!(f, "{e}"),
        }
    }
}

impl From<qdk_durability::DurabilityError> for Error {
    fn from(e: qdk_durability::DurabilityError) -> Self {
        Error::Durability(e)
    }
}

impl std::error::Error for Error {}

impl From<qdk_logic::ParseError> for Error {
    fn from(e: qdk_logic::ParseError) -> Self {
        Error::Parse(e)
    }
}

impl From<qdk_storage::StorageError> for Error {
    fn from(e: qdk_storage::StorageError) -> Self {
        Error::Storage(e)
    }
}

impl From<qdk_engine::EngineError> for Error {
    fn from(e: qdk_engine::EngineError) -> Self {
        Error::Engine(e)
    }
}

impl From<qdk_core::DescribeError> for Error {
    fn from(e: qdk_core::DescribeError) -> Self {
        Error::Describe(e)
    }
}

impl From<qdk_lang::LangError> for Error {
    fn from(e: qdk_lang::LangError) -> Self {
        match e {
            qdk_lang::LangError::Parse(e) => Error::Parse(e),
            qdk_lang::LangError::Storage(e) => Error::Storage(e),
            qdk_lang::LangError::Engine(e) => Error::Engine(e),
            qdk_lang::LangError::Describe(e) => Error::Describe(e),
            qdk_lang::LangError::Durability(e) => Error::Durability(e),
        }
    }
}

/// Result alias for facade operations.
pub type Result<T> = std::result::Result<T, Error>;
