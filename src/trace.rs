//! Structured per-query profiles assembled from observability events.
//!
//! When a [`crate::Request`] asks for tracing, the [`crate::Session`]
//! installs a [`qdk_logic::obs::CollectSink`] for the duration of the
//! evaluation and folds the captured event stream into a [`QueryTrace`]:
//! the span tree (stage and sub-stage timings), the engine counters, and
//! any strategy downgrades — one self-contained profile per query, with a
//! human-readable [`std::fmt::Display`].

use qdk_engine::Downgrade;
use qdk_logic::obs::Event;
use std::fmt;

/// One completed span of a query evaluation: a named, timed section.
/// Spans form a tree; `depth` 0 is a top-level *stage* (`parse`, `plan`,
/// `execute`), deeper spans break a stage down (strategy, strata,
/// fixpoint iterations, enumeration phases).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceSpan {
    /// Span name (see DESIGN.md §12 for the taxonomy).
    pub name: &'static str,
    /// Span argument (stratum index, iteration number, item count, …;
    /// 0 when the span carries no argument).
    pub arg: u64,
    /// Wall-clock duration in microseconds.
    pub micros: u64,
    /// Nesting depth (0 = stage).
    pub depth: usize,
}

/// A structured profile of one query evaluation, returned by
/// [`crate::Response::trace`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueryTrace {
    /// The statement that was evaluated, rendered.
    pub statement: String,
    /// Total wall-clock time of the evaluation in microseconds (measured
    /// around parse + plan + execute).
    pub wall_micros: u64,
    /// Completed spans in start order (pre-order over the span tree).
    pub spans: Vec<TraceSpan>,
    /// Counters summed by name, in first-emission order.
    pub counters: Vec<(&'static str, u64)>,
    /// Strategy downgrades recorded while answering (surfaced here as
    /// well as on the answer itself).
    pub downgrades: Vec<Downgrade>,
    /// Events the bounded collector discarded because the query emitted
    /// more than its capacity. Zero means the profile is complete; a
    /// non-zero value warns that span durations and counter sums
    /// undercount the evaluation.
    pub dropped_events: u64,
}

impl QueryTrace {
    /// Folds a captured event stream into a trace. Unmatched span starts
    /// (possible only when a sink overflowed mid-query) are kept with a
    /// zero duration; unmatched ends are ignored.
    pub fn from_events(
        events: &[Event],
        statement: String,
        wall_micros: u64,
        downgrades: Vec<Downgrade>,
    ) -> Self {
        let mut spans: Vec<TraceSpan> = Vec::new();
        let mut stack: Vec<usize> = Vec::new();
        let mut counters: Vec<(&'static str, u64)> = Vec::new();
        fn bump(counters: &mut Vec<(&'static str, u64)>, name: &'static str, value: u64) {
            match counters.iter_mut().find(|(n, _)| *n == name) {
                Some((_, v)) => *v += value,
                None => counters.push((name, value)),
            }
        }
        for ev in events {
            match *ev {
                Event::SpanStart { name, arg } => {
                    spans.push(TraceSpan {
                        name,
                        arg,
                        micros: 0,
                        depth: stack.len(),
                    });
                    stack.push(spans.len() - 1);
                }
                Event::SpanEnd { name, micros, .. } => {
                    if let Some(i) = stack.pop() {
                        if spans[i].name == name {
                            spans[i].micros = micros;
                        }
                    }
                }
                Event::Counter { name, value } => bump(&mut counters, name, value),
                // Durability events fold into counters so a traced query
                // that triggered WAL writes or a checkpoint shows it.
                Event::WalAppend { bytes, .. } => {
                    bump(&mut counters, "wal_appends", 1);
                    bump(&mut counters, "wal_bytes", bytes);
                }
                Event::Checkpoint { bytes, .. } => {
                    bump(&mut counters, "checkpoints", 1);
                    bump(&mut counters, "checkpoint_bytes", bytes);
                }
                Event::Recovery {
                    replayed,
                    discarded_bytes,
                } => {
                    bump(&mut counters, "recovery_replayed", replayed);
                    bump(&mut counters, "recovery_discarded_bytes", discarded_bytes);
                }
            }
        }
        QueryTrace {
            statement,
            wall_micros,
            spans,
            counters,
            downgrades,
            dropped_events: 0,
        }
    }

    /// Records how many events the collector discarded (sink overflow).
    #[must_use]
    pub fn with_dropped(mut self, dropped: u64) -> Self {
        self.dropped_events = dropped;
        self
    }

    /// Renders the trace as one self-contained JSON object (no trailing
    /// newline) — the slow-query log line format. `run_id` is the
    /// session-unique sequence number the capture assigns, so lines from
    /// interleaved queries stay attributable.
    pub fn render_json(&self, run_id: u64) -> String {
        use std::fmt::Write;
        let esc = qdk_logic::metrics::json_escape;
        let mut out = String::with_capacity(256);
        let _ = write!(
            out,
            "{{\"run_id\":{run_id},\"statement\":\"{}\",\"wall_micros\":{}",
            esc(&self.statement),
            self.wall_micros
        );
        out.push_str(",\"spans\":[");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"arg\":{},\"micros\":{},\"depth\":{}}}",
                esc(s.name),
                s.arg,
                s.micros,
                s.depth
            );
        }
        out.push_str("],\"counters\":{");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", esc(name), value);
        }
        out.push_str("},\"downgrades\":[");
        for (i, d) in self.downgrades.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\"", esc(&d.to_string()));
        }
        let _ = write!(out, "],\"dropped_events\":{}}}", self.dropped_events);
        out
    }

    /// The top-level stages (depth-0 spans): `parse`, `plan` (retrieve
    /// only) and `execute`. Their durations tile the query's wall time.
    pub fn stages(&self) -> impl Iterator<Item = &TraceSpan> {
        self.spans.iter().filter(|s| s.depth == 0)
    }

    /// The summed value of a counter, if it was emitted.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, v)| v)
    }

    /// The duration of the first span with the given name, if any.
    pub fn span_micros(&self, name: &str) -> Option<u64> {
        self.spans.iter().find(|s| s.name == name).map(|s| s.micros)
    }
}

impl fmt::Display for QueryTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "trace: {}  (wall {} µs)",
            self.statement, self.wall_micros
        )?;
        for s in &self.spans {
            let label = if s.arg == 0 {
                s.name.to_string()
            } else {
                format!("{}[{}]", s.name, s.arg)
            };
            writeln!(
                f,
                "  {:indent$}{label:<width$} {:>8} µs",
                "",
                s.micros,
                indent = s.depth * 2,
                width = 24usize.saturating_sub(s.depth * 2),
            )?;
        }
        if !self.counters.is_empty() {
            writeln!(f, "counters:")?;
            for (name, value) in &self.counters {
                writeln!(f, "  {name} = {value}")?;
            }
        }
        for d in &self.downgrades {
            writeln!(f, "-- note: {d}")?;
        }
        if self.dropped_events > 0 {
            writeln!(
                f,
                "-- note: {} events dropped (collector overflow); timings undercount",
                self.dropped_events
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn folds_events_into_a_span_tree() {
        let events = [
            Event::SpanStart {
                name: "parse",
                arg: 0,
            },
            Event::SpanEnd {
                name: "parse",
                arg: 0,
                micros: 5,
            },
            Event::SpanStart {
                name: "execute",
                arg: 0,
            },
            Event::SpanStart {
                name: "seminaive",
                arg: 0,
            },
            Event::SpanStart {
                name: "stratum",
                arg: 1,
            },
            Event::Counter {
                name: "rule_firings",
                value: 3,
            },
            Event::SpanEnd {
                name: "stratum",
                arg: 1,
                micros: 7,
            },
            Event::Counter {
                name: "rule_firings",
                value: 4,
            },
            Event::SpanEnd {
                name: "seminaive",
                arg: 0,
                micros: 9,
            },
            Event::SpanEnd {
                name: "execute",
                arg: 0,
                micros: 11,
            },
        ];
        let t = QueryTrace::from_events(&events, "retrieve p(X)".into(), 20, Vec::new());
        let depths: Vec<(&str, usize, u64)> = t
            .spans
            .iter()
            .map(|s| (s.name, s.depth, s.micros))
            .collect();
        assert_eq!(
            depths,
            vec![
                ("parse", 0, 5),
                ("execute", 0, 11),
                ("seminaive", 1, 9),
                ("stratum", 2, 7),
            ]
        );
        assert_eq!(t.stages().count(), 2);
        assert_eq!(t.counter("rule_firings"), Some(7));
        assert_eq!(t.counter("absent"), None);
        assert_eq!(t.span_micros("seminaive"), Some(9));
        let rendered = t.to_string();
        assert!(rendered.contains("stratum[1]"), "{rendered}");
        assert!(rendered.contains("rule_firings = 7"), "{rendered}");
    }

    #[test]
    fn unmatched_span_start_keeps_zero_duration() {
        let events = [Event::SpanStart {
            name: "execute",
            arg: 0,
        }];
        let t = QueryTrace::from_events(&events, "q".into(), 1, Vec::new());
        assert_eq!(t.spans.len(), 1);
        assert_eq!(t.spans[0].micros, 0);
    }
}
