//! The unified mutation API: the write-side twin of [`Request`](crate::Request).
//!
//! A [`Mutation`] collects inserts, retracts, rules, constraints and
//! declarations with one builder shape, mirroring how the request builder collects
//! a query's knobs. [`Session::apply`] parses the whole batch up front
//! (one malformed operation fails the mutation before anything is logged
//! or applied), runs it as a single atomic transaction, and returns an
//! [`Applied`] report of what the batch did — including what incremental
//! view maintenance did under it: derived facts added, deleted and
//! rederived, recompute fallbacks (also surfaced as [`Downgrade`]s on the
//! next retrieve), and how the describe cache fared.
//!
//! ```
//! use qdk::{Mutation, Request, Session};
//!
//! let mut session = Session::new();
//! session.load(
//!     "predicate edge(F, T).
//!      reach(X, Y) :- edge(X, Y).
//!      reach(X, Y) :- edge(X, Z), reach(Z, Y).",
//! ).unwrap();
//!
//! let applied = session.apply(
//!     Mutation::new()
//!         .insert("edge(a, b)")
//!         .insert("edge(b, c)")
//!         .retract("edge(a, b)")
//!         .insert("edge(a, c)"),
//! ).unwrap();
//! assert_eq!(applied.inserted, 3);
//! assert_eq!(applied.retracted, 1);
//!
//! let resp = session.retrieve(Request::subject("reach(a, X)")).unwrap();
//! assert_eq!(resp.as_data().unwrap().len(), 1);
//! ```

use crate::error::Result;
use crate::session::Session;
use qdk_core::CacheStats;
use qdk_engine::{Downgrade, MaintainStats};
use qdk_logic::parser::{parse_atom, parse_body, parse_rule};
use qdk_logic::{Atom, Constraint, Rule};

/// A batch of knowledge-base changes, built incrementally and applied
/// atomically with [`Session::apply`]. Operations execute in the order
/// they were added.
#[derive(Clone, Debug, Default)]
pub struct Mutation {
    ops: Vec<Op>,
}

#[derive(Clone, Debug)]
enum Op {
    Insert(String),
    Retract(String),
    Rule(String),
    Constraint(String),
    Declare {
        name: String,
        attrs: Vec<String>,
        key: Option<usize>,
    },
}

impl Mutation {
    /// An empty mutation; chain the builder methods onto it.
    pub fn new() -> Self {
        Mutation::default()
    }

    /// Number of operations in the batch.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when no operations have been added.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Adds a fact insertion, e.g. `"edge(a, b)"`.
    #[must_use]
    pub fn insert(mut self, fact: impl Into<String>) -> Self {
        self.ops.push(Op::Insert(fact.into()));
        self
    }

    /// Adds a fact retraction, e.g. `"edge(a, b)"`.
    #[must_use]
    pub fn retract(mut self, fact: impl Into<String>) -> Self {
        self.ops.push(Op::Retract(fact.into()));
        self
    }

    /// Adds an IDB rule, e.g. `"reach(X, Y) :- edge(X, Y)"`.
    #[must_use]
    pub fn rule(mut self, rule: impl Into<String>) -> Self {
        self.ops.push(Op::Rule(rule.into()));
        self
    }

    /// Adds an integrity constraint as the conjunction that must never
    /// hold, e.g. `"honor(X), suspended(X)"`.
    #[must_use]
    pub fn constraint(mut self, body: impl Into<String>) -> Self {
        self.ops.push(Op::Constraint(body.into()));
        self
    }

    /// Declares an EDB predicate with its attribute names and optional
    /// key-prefix length.
    #[must_use]
    pub fn declare(mut self, name: impl Into<String>, attrs: &[&str], key: Option<usize>) -> Self {
        self.ops.push(Op::Declare {
            name: name.into(),
            attrs: attrs.iter().map(|a| (*a).to_string()).collect(),
            key,
        });
        self
    }

    /// Parses every operation, failing fast before anything is applied.
    fn parsed(&self) -> Result<Vec<ParsedOp>> {
        self.ops
            .iter()
            .map(|op| {
                Ok(match op {
                    Op::Insert(f) => ParsedOp::Insert(parse_atom(f)?),
                    Op::Retract(f) => ParsedOp::Retract(parse_atom(f)?),
                    Op::Rule(r) => {
                        // The grammar terminates clauses with '.', but the
                        // builder accepts bare rules like the atom methods do.
                        let src = r.trim();
                        let src = if src.ends_with('.') {
                            src.to_string()
                        } else {
                            format!("{src}.")
                        };
                        ParsedOp::Rule(parse_rule(&src)?)
                    }
                    Op::Constraint(b) => {
                        let lits = parse_body(b)?;
                        let mut atoms = Vec::with_capacity(lits.len());
                        for lit in lits {
                            if !lit.positive {
                                return Err(crate::error::Error::Parse(qdk_logic::ParseError {
                                    message: format!(
                                        "constraint bodies are positive conjunctions: {b}"
                                    ),
                                    line: 1,
                                    column: 1,
                                }));
                            }
                            atoms.push(lit.atom);
                        }
                        ParsedOp::Constraint(Constraint::new(atoms))
                    }
                    Op::Declare { name, attrs, key } => ParsedOp::Declare {
                        name: name.clone(),
                        attrs: attrs.clone(),
                        key: *key,
                    },
                })
            })
            .collect()
    }
}

enum ParsedOp {
    Insert(Atom),
    Retract(Atom),
    Rule(Rule),
    Constraint(Constraint),
    Declare {
        name: String,
        attrs: Vec<String>,
        key: Option<usize>,
    },
}

/// What one applied [`Mutation`] did: the per-operation outcome counts,
/// plus the incremental-maintenance and describe-cache effects of the
/// batch.
#[derive(Clone, Debug, Default)]
pub struct Applied {
    /// Facts newly stored.
    pub inserted: usize,
    /// Inserts of facts that were already stored.
    pub duplicates: usize,
    /// Facts removed.
    pub retracted: usize,
    /// Retracts of facts that were not stored.
    pub missing: usize,
    /// Rules added to the IDB.
    pub rules_added: usize,
    /// Integrity constraints added.
    pub constraints_added: usize,
    /// EDB predicates declared.
    pub declared: usize,
    /// What incremental maintenance did: derived facts added, deleted,
    /// rederived; strata invalidated; recompute fallback reasons.
    pub maintenance: MaintainStats,
    /// Maintenance downgrades queued for the next retrieve's answer
    /// (copies — the answer still receives them).
    pub downgrades: Vec<Downgrade>,
    /// Describe-cache movement under this batch: hits/misses are zero
    /// here (queries do not run inside a mutation); `evicted` counts
    /// entries invalidated by rule/constraint changes and `survived`
    /// counts entries kept because a new rule was θ-subsumed by an
    /// existing one.
    pub describe_cache: CacheStats,
}

impl Applied {
    /// How many operations fell back from incremental maintenance to
    /// full recomputation.
    pub fn recomputes(&self) -> usize {
        self.maintenance.recomputes()
    }
}

impl Session {
    /// Applies a [`Mutation`] as one atomic transaction.
    ///
    /// The whole batch is parsed first — a malformed operation fails the
    /// call before anything is logged or applied. On first use this
    /// materializes the incrementally maintained derived-fact store (one
    /// full evaluation); from then on every mutation propagates deltas
    /// instead of invalidating, and bottom-up retrieves serve straight
    /// from the maintained state. For durable sessions the batch reaches
    /// the WAL as a single all-or-nothing record; on any error the
    /// knowledge base rolls back to its pre-mutation state.
    ///
    /// Publishing is explicit: call [`Session::publish`] (or
    /// [`Session::snapshot`]) to expose the mutated state to concurrent
    /// readers.
    pub fn apply(&mut self, mutation: Mutation) -> Result<Applied> {
        let ops = mutation.parsed()?;
        let kb = self.knowledge_base_mut();
        kb.materialize_maintained()?;
        let cache_before = kb.describe_cache_stats();
        let mut report = Applied::default();
        kb.transaction(|kb| {
            for op in &ops {
                match op {
                    ParsedOp::Insert(a) => {
                        if kb.add_fact(a)? {
                            report.inserted += 1;
                        } else {
                            report.duplicates += 1;
                        }
                    }
                    ParsedOp::Retract(a) => {
                        if kb.retract_fact(a)? {
                            report.retracted += 1;
                        } else {
                            report.missing += 1;
                        }
                    }
                    ParsedOp::Rule(r) => {
                        kb.add_rule(r.clone())?;
                        report.rules_added += 1;
                    }
                    ParsedOp::Constraint(c) => {
                        kb.add_constraint(c.clone())?;
                        report.constraints_added += 1;
                    }
                    ParsedOp::Declare { name, attrs, key } => {
                        let refs: Vec<&str> = attrs.iter().map(String::as_str).collect();
                        kb.declare(name, &refs, *key)?;
                        report.declared += 1;
                    }
                }
            }
            Ok(())
        })?;
        let kb = self.knowledge_base_mut();
        report.maintenance = kb.take_maintain_stats();
        report.downgrades = kb.pending_downgrades();
        report.describe_cache = cache_delta(cache_before, kb.describe_cache_stats());
        Ok(report)
    }
}

/// The cache movement between two cumulative snapshots.
fn cache_delta(before: CacheStats, after: CacheStats) -> CacheStats {
    CacheStats {
        hits: after.hits.saturating_sub(before.hits),
        misses: after.misses.saturating_sub(before.misses),
        evicted: after.evicted.saturating_sub(before.evicted),
        survived: after.survived.saturating_sub(before.survived),
    }
}
