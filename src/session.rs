//! The unified `Session` facade: both statements, one request shape.
//!
//! The paper's instrument has twin statements that differ only in their
//! initial keyword; this module gives them twin *calls* that differ only
//! in the method name. A [`Session`] wraps a [`KnowledgeBase`]; a
//! [`Request`] carries everything one evaluation needs — subject, optional
//! hypothesis/qualifier, strategy, resource limits, cancellation and
//! worker count — as a builder; a [`Response`] is either data rows or
//! theorems, tagged. Errors consolidate into [`crate::Error`].
//!
//! ```
//! use qdk::{Request, Session};
//!
//! let mut session = Session::new();
//! session.load(
//!     "predicate student(Sname, Major, Gpa) key 1.
//!      student(ann, math, 3.9).
//!      student(bob, math, 3.5).
//!      honor(X) :- student(X, Y, Z), Z > 3.7.",
//! ).unwrap();
//!
//! let data = session.retrieve(Request::subject("honor(X)")).unwrap();
//! assert!(data.as_data().unwrap().contains_row(&["ann"]));
//!
//! let knowledge = session.describe(Request::subject("honor(X)")).unwrap();
//! assert_eq!(
//!     knowledge.as_knowledge().unwrap().rendered(),
//!     vec!["honor(X) ← student(X, Y, Z) ∧ (Z > 3.7)"],
//! );
//! ```

use crate::error::Result;
use crate::trace::QueryTrace;
use qdk_core::{Describe, DescribeAnswer};
use qdk_engine::{DataAnswer, Downgrade, EvalOptions, ProgramPlan, Retrieve, Strategy};
use qdk_lang::shared::{KbState, Publisher};
use qdk_lang::{Answer, KnowledgeBase};
use qdk_logic::metrics::{MetricsHub, MetricsSnapshot};
use qdk_logic::obs::{CollectSink, FanoutSink, ObsSink, Sink};
use qdk_logic::parser::{parse_atom, parse_body};
use qdk_logic::{CancelToken, Parallelism, ResourceLimits};
use qdk_storage::{EpochCell, EpochId};
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

/// One query, fully specified: the subject, an optional hypothesis (for
/// `describe`) or qualifier (for `retrieve`), and the per-request
/// evaluation knobs. Build with [`Request::subject`] and chain the
/// builder methods; anything left unset inherits the session's defaults.
#[derive(Clone, Debug)]
pub struct Request {
    subject: String,
    hypothesis: Option<String>,
    strategy: Option<Strategy>,
    limits: Option<ResourceLimits>,
    cancel: Option<CancelToken>,
    parallelism: Option<Parallelism>,
    trace: bool,
}

impl Request {
    /// A request for the given subject atom, e.g. `"honor(X)"`.
    pub fn subject(subject: impl Into<String>) -> Self {
        Request {
            subject: subject.into(),
            hypothesis: None,
            strategy: None,
            limits: None,
            cancel: None,
            parallelism: None,
            trace: false,
        }
    }

    /// The `where` conjunction: the hypothesis of a `describe`, the
    /// qualifier of a `retrieve`. E.g. `"student(X, math, V), V > 3.7"`.
    #[must_use]
    pub fn where_clause(mut self, hypothesis: impl Into<String>) -> Self {
        self.hypothesis = Some(hypothesis.into());
        self
    }

    /// The retrieve evaluation strategy (ignored by `describe`).
    #[must_use]
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = Some(strategy);
        self
    }

    /// Resource limits for this request only.
    #[must_use]
    pub fn limits(mut self, limits: ResourceLimits) -> Self {
        self.limits = Some(limits);
        self
    }

    /// A cooperative cancellation token for this request only.
    #[must_use]
    pub fn cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Worker count for this request only ([`Parallelism::SEQUENTIAL`]
    /// pins the exact sequential path).
    #[must_use]
    pub fn parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = Some(parallelism);
        self
    }

    /// Requests a structured profile of the evaluation: the response's
    /// [`Response::trace`] returns a [`QueryTrace`] with stage timings,
    /// engine counters and any strategy downgrades. Tracing never changes
    /// the answer — only observes it (see DESIGN.md §12).
    #[must_use]
    pub fn with_trace(mut self, trace: bool) -> Self {
        self.trace = trace;
        self
    }

    /// The parsed `where` conjunction (empty when none was given).
    fn parsed_hypothesis(&self) -> Result<Vec<qdk_logic::Literal>> {
        match &self.hypothesis {
            Some(h) => Ok(parse_body(h)?),
            None => Ok(Vec::new()),
        }
    }
}

/// The answer to one [`Request`]: data rows for `retrieve`, theorems for
/// `describe`, plus the optional [`QueryTrace`] profile when the request
/// asked for one with [`Request::with_trace`].
#[derive(Clone, Debug)]
pub struct Response {
    payload: Payload,
    trace: Option<QueryTrace>,
}

#[derive(Clone, Debug)]
enum Payload {
    Data(DataAnswer),
    Knowledge(DescribeAnswer),
}

impl Response {
    fn data(answer: DataAnswer, trace: Option<QueryTrace>) -> Self {
        Response {
            payload: Payload::Data(answer),
            trace,
        }
    }

    fn knowledge(answer: DescribeAnswer, trace: Option<QueryTrace>) -> Self {
        Response {
            payload: Payload::Knowledge(answer),
            trace,
        }
    }

    /// The data answer, if this was a `retrieve`.
    pub fn as_data(&self) -> Option<&DataAnswer> {
        match &self.payload {
            Payload::Data(d) => Some(d),
            Payload::Knowledge(_) => None,
        }
    }

    /// The knowledge answer, if this was a `describe`.
    pub fn as_knowledge(&self) -> Option<&DescribeAnswer> {
        match &self.payload {
            Payload::Data(_) => None,
            Payload::Knowledge(k) => Some(k),
        }
    }

    /// Consumes the response into its data answer.
    pub fn into_data(self) -> Option<DataAnswer> {
        match self.payload {
            Payload::Data(d) => Some(d),
            Payload::Knowledge(_) => None,
        }
    }

    /// Consumes the response into its knowledge answer.
    pub fn into_knowledge(self) -> Option<DescribeAnswer> {
        match self.payload {
            Payload::Data(_) => None,
            Payload::Knowledge(k) => Some(k),
        }
    }

    /// The structured profile of this evaluation, when the request asked
    /// for one with [`Request::with_trace`].
    pub fn trace(&self) -> Option<&QueryTrace> {
        self.trace.as_ref()
    }

    /// Strategy downgrades recorded while answering: the requested
    /// strategy could not complete and a simpler one produced the answer
    /// (e.g. magic-sets degrading to semi-naive on a non-stratified
    /// slice). Empty for `describe` answers and for retrieves that ran as
    /// requested — check this to detect silent degradation without
    /// enabling tracing.
    pub fn downgrades(&self) -> &[Downgrade] {
        match &self.payload {
            Payload::Data(d) => &d.downgrades,
            Payload::Knowledge(_) => &[],
        }
    }
}

impl fmt::Display for Response {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.payload {
            Payload::Data(d) => write!(f, "{d}"),
            Payload::Knowledge(k) => write!(f, "{k}"),
        }
    }
}

/// A stateful facade over one [`KnowledgeBase`]: load schema and clauses,
/// then ask either statement with one [`Request`] shape. Session-level
/// defaults (strategy, limits, parallelism) come from the wrapped
/// knowledge base; each request may override any of them.
///
/// For concurrent serving the session doubles as the **single writer** of
/// an epoch sequence: [`Session::snapshot`] publishes the current state
/// as an immutable epoch and hands back a [`SnapshotSession`] — a
/// `Send + Sync` read handle any number of threads can query with zero
/// locks while this session keeps mutating and publishing.
#[derive(Debug, Default)]
pub struct Session {
    kb: KnowledgeBase,
    publisher: Option<Publisher>,
}

impl Clone for Session {
    /// Clones the knowledge base (cheap, copy-on-write). The clone is a
    /// plain session: it does **not** inherit the epoch publisher — two
    /// writers publishing into one cell would break single-writer epoch
    /// ordering — so its first `snapshot()` starts a fresh sequence.
    fn clone(&self) -> Self {
        Session {
            kb: self.kb.clone(),
            publisher: None,
        }
    }
}

impl Session {
    /// A session over an empty knowledge base with paper-style defaults.
    pub fn new() -> Self {
        Session {
            kb: KnowledgeBase::new(),
            publisher: None,
        }
    }

    /// A session over a durable knowledge base stored at `dir` (created
    /// if absent), with default durability options: every mutation is
    /// fsynced to the write-ahead log before it is applied, and a
    /// checkpoint snapshot is taken every 1024 ops. A previous process's
    /// state — checkpoint plus WAL tail, tolerating a torn final record —
    /// is recovered on open; see [`Session::recovery_report`].
    pub fn open(dir: impl AsRef<std::path::Path>) -> Result<Self> {
        Ok(Session {
            kb: KnowledgeBase::open_durable(dir)?,
            publisher: None,
        })
    }

    /// [`Session::open`] with explicit durability options (fsync policy,
    /// checkpoint cadence).
    pub fn open_with(
        dir: impl AsRef<std::path::Path>,
        opts: qdk_durability::DurabilityOptions,
    ) -> Result<Self> {
        Ok(Session {
            kb: KnowledgeBase::open_durable_with(dir, opts)?,
            publisher: None,
        })
    }

    /// What recovery found when this session's store was opened: ops
    /// restored from the checkpoint, WAL records replayed, torn tail
    /// bytes discarded. `None` for in-memory sessions.
    pub fn recovery_report(&self) -> Option<qdk_durability::RecoveryReport> {
        self.kb.recovery_report()
    }

    /// Snapshots the knowledge base into a checkpoint and truncates the
    /// WAL. Returns the covered LSN and snapshot size, or `None` for an
    /// in-memory session.
    pub fn checkpoint(&mut self) -> Result<Option<(qdk_durability::Lsn, u64)>> {
        Ok(self.kb.checkpoint()?)
    }

    /// Wraps an existing knowledge base.
    pub fn over(kb: KnowledgeBase) -> Self {
        Session {
            kb,
            publisher: None,
        }
    }

    /// The wrapped knowledge base.
    pub fn knowledge_base(&self) -> &KnowledgeBase {
        &self.kb
    }

    /// Mutable access to the wrapped knowledge base.
    pub fn knowledge_base_mut(&mut self) -> &mut KnowledgeBase {
        &mut self.kb
    }

    /// Parses and executes a script (declarations, facts, rules,
    /// constraints, queries), returning every answer.
    pub fn load(&mut self, src: &str) -> Result<Vec<Answer>> {
        Ok(self.kb.load(src)?)
    }

    /// Parses and executes one statement of the unified language.
    pub fn run(&mut self, src: &str) -> Result<Answer> {
        Ok(self.kb.run(src)?)
    }

    /// Evaluates a data query: `retrieve subject where qualifier`.
    pub fn retrieve(&self, request: Request) -> Result<Response> {
        retrieve_on(&self.kb, None, request)
    }

    /// Evaluates a knowledge query: `describe subject where hypothesis`.
    pub fn describe(&self, request: Request) -> Result<Response> {
        describe_on(&self.kb, request)
    }

    /// The epoch of the most recent publish, or `None` if this session
    /// has never published a snapshot.
    pub fn epoch(&self) -> Option<EpochId> {
        self.publisher.as_ref().map(Publisher::epoch)
    }

    /// Publishes the session's current state as the next epoch. Readers
    /// holding [`SnapshotSession`]s see it at their next
    /// [`SnapshotSession::refresh`]; snapshots pinned to older epochs are
    /// untouched. Publication freezes everything a reader needs — facts,
    /// rules, the compiled plan, the composite indexes the plan's scans
    /// probe — and, for durable sessions, forces the WAL to stable
    /// storage first, so a published epoch is always durable.
    pub fn publish(&mut self) -> Result<EpochId> {
        match &mut self.publisher {
            Some(p) => Ok(p.publish(&mut self.kb)?),
            None => {
                let p = Publisher::new(&mut self.kb)?;
                let epoch = p.epoch();
                self.publisher = Some(p);
                Ok(epoch)
            }
        }
    }

    /// Publishes the current state (see [`Session::publish`]) and opens a
    /// read handle pinned to it. The handle is `Send + Sync` and clones
    /// cheaply: hand copies to as many threads as you like, and every
    /// query they run touches no lock — the snapshot owns an immutable
    /// knowledge base with its plan and indexes prebuilt.
    pub fn snapshot(&mut self) -> Result<SnapshotSession> {
        self.publish()?;
        let p = self
            .publisher
            .as_ref()
            .expect("publisher exists after publish");
        let cell = p.cell();
        let version = cell.version();
        Ok(SnapshotSession {
            cell,
            version,
            state: Arc::clone(p.last()),
        })
    }

    /// Attaches a fresh metrics hub to this session's knowledge base and
    /// starts aggregating: every span and counter the evaluation stacks
    /// emit — plus durability, maintenance and epoch events — folds into
    /// sharded lock-free counters, gauges and latency histograms. The
    /// hub is shared by clones and snapshots taken *after* this call.
    /// Read the aggregates with [`Session::metrics_snapshot`].
    pub fn enable_metrics(&mut self) -> Arc<MetricsHub> {
        self.kb.enable_metrics()
    }

    /// [`Session::enable_metrics`] aggregating into an existing hub —
    /// e.g. one shared across several knowledge bases, or the
    /// process-wide hub `QDK_TRACE=metrics` feeds.
    pub fn enable_metrics_with(&mut self, hub: Arc<MetricsHub>) {
        self.kb.enable_metrics_with(hub);
    }

    /// The attached metrics hub, if metrics are enabled.
    pub fn metrics_hub(&self) -> Option<&Arc<MetricsHub>> {
        self.kb.metrics_hub()
    }

    /// A consistent snapshot of every aggregate: counters, gauges and
    /// histogram quantiles, name-sorted. Point-in-time subsystem gauges
    /// (EDB/IDB sizes, cache and WAL state, epoch version and pin count)
    /// are polled first. `None` until [`Session::enable_metrics`].
    /// Render with [`MetricsSnapshot::render_prometheus`] or
    /// [`MetricsSnapshot::render_json`].
    pub fn metrics_snapshot(&self) -> Option<MetricsSnapshot> {
        if let (Some(hub), Some(p)) = (self.kb.metrics_hub(), &self.publisher) {
            let reg = hub.registry();
            reg.gauge_set("epoch_version", p.epoch().0);
            reg.gauge_set("snapshot_pins", p.pinned_readers());
        }
        self.kb.metrics_snapshot()
    }

    /// Arms slow-query capture: any retrieve or describe whose wall time
    /// reaches `micros` has its full profile rendered as one JSON line to
    /// `writer`, tagged with a session-unique run id, and counted in the
    /// `slow_queries` metric. Implies [`Session::enable_metrics`] if
    /// metrics were not already enabled. Pass `micros = 0` to disarm.
    pub fn capture_slow_queries(
        &mut self,
        micros: u64,
        writer: impl std::io::Write + Send + 'static,
    ) -> Arc<MetricsHub> {
        let hub = match self.kb.metrics_hub() {
            Some(h) => Arc::clone(h),
            None => self.kb.enable_metrics(),
        };
        hub.set_slow_query_micros(micros);
        hub.set_slow_log(writer);
        hub
    }

    /// Runs `f` as one atomic batch and, if this session has published
    /// before, publishes the result as the next epoch. The closure's
    /// mutations are logged as a single WAL record (all-or-nothing on
    /// disk); on error the knowledge base rolls back and nothing is
    /// published. Returns the closure's value.
    pub fn batch<R>(
        &mut self,
        f: impl FnOnce(&mut KnowledgeBase) -> qdk_lang::Result<R>,
    ) -> Result<R> {
        let value = self.kb.transaction(f)?;
        if self.publisher.is_some() {
            self.publish()?;
        }
        Ok(value)
    }
}

impl From<KnowledgeBase> for Session {
    fn from(kb: KnowledgeBase) -> Self {
        Session::over(kb)
    }
}

/// An immutable read handle pinned to one published epoch. Obtained from
/// [`Session::snapshot`]; `Send + Sync` and cheap to clone, so any number
/// of threads can hold one and query concurrently. Queries against a
/// snapshot acquire **no lock**: the epoch owns its facts, rules,
/// compiled plan and composite indexes, all frozen at publish time.
///
/// A snapshot never changes underneath its holder — a writer publishing
/// new epochs is invisible until [`SnapshotSession::refresh`] is called,
/// which hops to the newest epoch (one atomic load on the fast path).
#[derive(Clone, Debug)]
pub struct SnapshotSession {
    cell: Arc<EpochCell<KbState>>,
    version: u64,
    state: Arc<KbState>,
}

impl SnapshotSession {
    /// The epoch this handle is pinned to.
    pub fn epoch(&self) -> EpochId {
        self.state.epoch
    }

    /// The frozen knowledge base of the pinned epoch.
    pub fn knowledge_base(&self) -> &KnowledgeBase {
        &self.state.kb
    }

    /// Hops to the most recently published epoch. Returns `true` if the
    /// handle moved. When nothing new was published this is a single
    /// atomic load — safe to call before every query.
    pub fn refresh(&mut self) -> bool {
        let moved = self.cell.refresh(&mut self.version, &mut self.state);
        if moved {
            self.state
                .kb
                .describe_options()
                .sink
                .counter("epoch_refresh", 1);
        }
        moved
    }

    /// A consistent snapshot of the shared metrics aggregates, polling
    /// the pinned epoch's subsystem gauges first (the hub is shared with
    /// the writer session, so counters and histograms reflect *all*
    /// readers). `None` if the writer never enabled metrics before
    /// publishing this epoch.
    pub fn metrics_snapshot(&self) -> Option<MetricsSnapshot> {
        if let Some(hub) = self.state.kb.metrics_hub() {
            hub.registry()
                .gauge_set("epoch_version", self.state.epoch.0);
        }
        self.state.kb.metrics_snapshot()
    }

    /// Evaluates a data query against the pinned epoch (zero locks).
    pub fn retrieve(&self, request: Request) -> Result<Response> {
        retrieve_on(&self.state.kb, Some(&self.state.plan), request)
    }

    /// Evaluates a knowledge query against the pinned epoch.
    pub fn describe(&self, request: Request) -> Result<Response> {
        describe_on(&self.state.kb, request)
    }
}

/// The sink for one request. A fresh collector is installed when the
/// request asks for a trace **or** slow-query capture is armed (the
/// capture needs the event stream to render a profile if the query turns
/// out slow); either way the knowledge base's default sink — which
/// carries the metrics aggregator when metrics are enabled — keeps
/// receiving every event through a fan-out, so tracing a query never
/// detaches it from the long-running aggregates.
fn request_sink(kb: &KnowledgeBase, request: &Request) -> (ObsSink, Option<Arc<CollectSink>>) {
    let default = kb.describe_options().sink.clone();
    let slow_armed = kb.metrics_hub().is_some_and(|h| h.slow_query_micros() > 0);
    if !(request.trace || slow_armed) {
        return (default, None);
    }
    let collector = Arc::new(CollectSink::new());
    let obs = match default.handle() {
        Some(existing) => ObsSink::new(Arc::new(FanoutSink::new(vec![
            Arc::clone(&collector) as Arc<dyn Sink>,
            existing,
        ]))),
        None => ObsSink::new(Arc::clone(&collector) as Arc<dyn Sink>),
    };
    (obs, Some(collector))
}

/// Which statement a finished evaluation was, for metric naming.
#[derive(Clone, Copy)]
enum QueryKind {
    Retrieve,
    Describe,
}

/// Shared epilogue of `retrieve` and `describe`: records the wall-time
/// histogram and per-kind counter, folds the collected events into a
/// [`QueryTrace`], writes the slow-query log line when the query crossed
/// the armed threshold, and returns the trace only if the request asked
/// for one.
fn finish_query(
    kb: &KnowledgeBase,
    collector: Option<Arc<CollectSink>>,
    want_trace: bool,
    kind: QueryKind,
    statement: String,
    wall: u64,
    downgrades: Vec<Downgrade>,
) -> Option<QueryTrace> {
    let hub = kb.metrics_hub();
    if let Some(hub) = hub {
        let reg = hub.registry();
        match kind {
            QueryKind::Retrieve => {
                reg.counter_add("retrieves", 1);
                reg.histogram_record("retrieve_micros", wall);
            }
            QueryKind::Describe => {
                reg.counter_add("describes", 1);
                reg.histogram_record("describe_micros", wall);
            }
        }
    }
    let trace = collector.map(|c| {
        let dropped = c.dropped();
        QueryTrace::from_events(&c.take(), statement, wall, downgrades).with_dropped(dropped)
    });
    if let Some(hub) = hub {
        let threshold = hub.slow_query_micros();
        if threshold > 0 && wall >= threshold {
            hub.registry().counter_add("slow_queries", 1);
            if let Some(t) = &trace {
                hub.write_slow_line(&t.render_json(hub.next_run_id()));
            }
        }
    }
    if want_trace {
        trace
    } else {
        None
    }
}

/// A [`Request`] resolved against one knowledge base's defaults: the
/// parsed subject and `where` conjunction, plus the option structs both
/// evaluation stacks consume. This is the facade's **single conversion
/// point** from the builder to the layered option types — `retrieve` and
/// `describe` no longer each assemble their own, so one override policy
/// (request knob, else session default) covers both statements.
struct Resolved {
    subject: qdk_logic::Atom,
    conjunction: Vec<qdk_logic::Literal>,
    strategy: Strategy,
    eval: EvalOptions,
    describe: qdk_core::DescribeOptions,
}

fn resolve_request(kb: &KnowledgeBase, request: &Request, obs: &ObsSink) -> Result<Resolved> {
    let (subject, conjunction) = {
        let _span = obs.span("parse", 0);
        (parse_atom(&request.subject)?, request.parsed_hypothesis()?)
    };
    let defaults = kb.describe_options();
    let limits = request.limits.unwrap_or(defaults.limits);
    let parallelism = request.parallelism.unwrap_or(defaults.parallelism);
    let cancel = request.cancel.clone().or_else(|| defaults.cancel.clone());
    let mut eval = EvalOptions::with_limits(limits).with_parallelism(parallelism);
    if let Some(token) = cancel.clone() {
        eval = eval.with_cancel(token);
    }
    eval.sink = obs.clone();
    let mut describe = defaults.clone();
    describe.limits = limits;
    describe.cancel = cancel;
    describe.parallelism = parallelism;
    describe.sink = obs.clone();
    Ok(Resolved {
        subject,
        conjunction,
        strategy: request.strategy.unwrap_or(kb.strategy()),
        eval,
        describe,
    })
}

/// `retrieve` against a knowledge base. With `plan`, execution uses the
/// given precompiled program and bypasses the plan cache entirely (the
/// snapshot path); without, it goes through the cache.
fn retrieve_on(
    kb: &KnowledgeBase,
    plan: Option<&ProgramPlan>,
    request: Request,
) -> Result<Response> {
    let (obs, collector) = request_sink(kb, &request);
    let started = Instant::now();
    let resolved = resolve_request(kb, &request, &obs)?;
    let query = Retrieve::new(resolved.subject, resolved.conjunction);
    let answer = match plan {
        Some(plan) => kb.retrieve_with_plan(plan, &query, resolved.strategy, resolved.eval)?,
        None => kb.retrieve_with_options(&query, resolved.strategy, resolved.eval)?,
    };
    let wall = started.elapsed().as_micros() as u64;
    let trace = finish_query(
        kb,
        collector,
        request.trace,
        QueryKind::Retrieve,
        query.to_string(),
        wall,
        answer.downgrades.clone(),
    );
    Ok(Response::data(answer, trace))
}

/// `describe` against a knowledge base (shared by [`Session`] and
/// [`SnapshotSession`]; the describe path never consults the plan cache).
fn describe_on(kb: &KnowledgeBase, request: Request) -> Result<Response> {
    let (obs, collector) = request_sink(kb, &request);
    let started = Instant::now();
    let resolved = resolve_request(kb, &request, &obs)?;
    let query = Describe::new(resolved.subject, resolved.conjunction);
    let answer = kb.describe_with_options(&query, &resolved.describe)?;
    let wall = started.elapsed().as_micros() as u64;
    let trace = finish_query(
        kb,
        collector,
        request.trace,
        QueryKind::Describe,
        query.to_string(),
        wall,
        Vec::new(),
    );
    Ok(Response::knowledge(answer, trace))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::Error;
    use qdk_logic::Resource;

    fn session() -> Session {
        let mut s = Session::new();
        s.load(
            "predicate student(Sname, Major, Gpa) key 1.\n\
             predicate enroll(Sname, Ctitle).\n\
             student(ann, math, 3.9).\n\
             student(bob, math, 3.5).\n\
             enroll(ann, databases).\n\
             honor(X) :- student(X, Y, Z), Z > 3.7.",
        )
        .unwrap();
        s
    }

    #[test]
    fn twin_statements_one_request_shape() {
        let s = session();
        let data = s.retrieve(Request::subject("honor(X)")).unwrap();
        assert!(data.as_data().unwrap().contains_row(&["ann"]));
        assert!(data.as_knowledge().is_none());
        let knowledge = s.describe(Request::subject("honor(X)")).unwrap();
        assert_eq!(
            knowledge.as_knowledge().unwrap().rendered(),
            vec!["honor(X) ← student(X, Y, Z) ∧ (Z > 3.7)"]
        );
        assert!(knowledge.as_data().is_none());
    }

    #[test]
    fn where_clause_feeds_both_statements() {
        let s = session();
        let data = s
            .retrieve(Request::subject("honor(X)").where_clause("enroll(X, databases)"))
            .unwrap();
        let d = data.into_data().unwrap();
        assert_eq!(d.len(), 1);
        assert!(d.contains_row(&["ann"]));
        let knowledge = s
            .describe(Request::subject("honor(X)").where_clause("student(X, math, V), V > 3.8"))
            .unwrap();
        let k = knowledge.into_knowledge().unwrap();
        // The hypothesis implies the whole definition: the student leaf
        // identifies and the GPA comparison is implied, leaving the
        // unconditional theorem.
        assert_eq!(k.rendered(), vec!["honor(X)"]);
    }

    #[test]
    fn per_request_strategy_and_parallelism() {
        let s = session();
        for strategy in [
            Strategy::Naive,
            Strategy::SemiNaive,
            Strategy::Magic,
            Strategy::TopDown,
            Strategy::Qsq,
        ] {
            for workers in [1, 4] {
                let r = s
                    .retrieve(
                        Request::subject("honor(X)")
                            .strategy(strategy)
                            .parallelism(Parallelism::workers(workers)),
                    )
                    .unwrap();
                assert!(r.as_data().unwrap().contains_row(&["ann"]), "{strategy:?}");
            }
        }
    }

    #[test]
    fn per_request_limits_override_session_defaults() {
        let mut s = Session::new();
        s.load(
            "predicate edge(F, T).\n\
             reach(X, Y) :- edge(X, Y).\n\
             reach(X, Y) :- edge(X, Z), reach(Z, Y).\n\
             edge(a, b). edge(b, c). edge(c, d). edge(d, e).",
        )
        .unwrap();
        let err = s
            .retrieve(
                Request::subject("reach(X, Y)")
                    .limits(ResourceLimits::default().with_work_budget(1)),
            )
            .expect_err("budget must trip");
        assert_eq!(err.exhausted().unwrap().resource, Resource::WorkBudget);
        // The session default (unbounded) is untouched.
        assert!(s.retrieve(Request::subject("reach(X, Y)")).is_ok());
    }

    #[test]
    fn cancelled_request_reports_cancellation() {
        let s = session();
        let token = CancelToken::new();
        token.cancel();
        let err = s
            .retrieve(Request::subject("honor(X)").cancel(token.clone()))
            .expect_err("pre-cancelled token must abort");
        assert_eq!(err.exhausted().unwrap().resource, Resource::Cancelled);
        // `describe` degrades gracefully: a cancelled enumeration returns
        // the (empty) prefix tagged Truncated rather than erroring.
        let resp = s
            .describe(Request::subject("honor(X)").cancel(token))
            .unwrap();
        let k = resp.into_knowledge().unwrap();
        assert_eq!(
            k.completeness.exhausted().unwrap().resource,
            Resource::Cancelled
        );
    }

    #[test]
    fn parse_errors_consolidate() {
        let s = session();
        let err = s.retrieve(Request::subject("honor(")).unwrap_err();
        assert!(matches!(err, Error::Parse(_)), "{err:?}");
        let err = s
            .describe(Request::subject("honor(X)").where_clause("student("))
            .unwrap_err();
        assert!(matches!(err, Error::Parse(_)), "{err:?}");
    }

    #[test]
    fn session_wraps_and_exposes_the_kb() {
        let kb = KnowledgeBase::new();
        let mut s = Session::from(kb);
        s.knowledge_base_mut().declare("p", &["A"], None).unwrap();
        assert!(s.knowledge_base().edb().is_edb_predicate("p"));
    }
}
