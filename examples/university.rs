//! The paper's university database (§2.2), running every worked example
//! and every introduction query end to end.
//!
//! Run with `cargo run --example university`.

use qdk::datasets;

fn main() -> Result<(), qdk::LangError> {
    let mut kb = datasets::university_extended();

    let queries: &[(&str, &str)] = &[
        // §3.1 data queries.
        (
            "Example 1 — retrieve the honor students enrolled in databases",
            "retrieve honor(X) where enroll(X, databases).",
        ),
        (
            "Example 2 — math students above 3.7 eligible to TA databases",
            "retrieve answer(X) where can_ta(X, databases) and student(X, math, V) and V > 3.7.",
        ),
        // §3.2 knowledge queries.
        (
            "Example 3 — when is such a student eligible to TA databases?",
            "describe can_ta(X, databases) where student(X, math, V) and V > 3.7.",
        ),
        (
            "Example 4 — what does it take to be an honor student?",
            "describe honor(X).",
        ),
        (
            "Example 5 — TA eligibility for a course currently taught by susan",
            "describe can_ta(X, Y) where honor(X) and teach(susan, Y).",
        ),
        // §5 recursive knowledge queries (Algorithm 2).
        (
            "Example 6 — when is X prior to Y, given databases is prior to Y?",
            "describe prior(X, Y) where prior(databases, Y).",
        ),
        (
            "Example 7 — when is X prior to Y, given X is prior to databases?",
            "describe prior(X, Y) where prior(X, databases).",
        ),
        // Introduction queries.
        (
            "Are all foreign students married?  (data)",
            "retrieve answer(X) where foreign(X) and unmarried(X).",
        ),
        (
            "Must all foreign students be married?  (knowledge)",
            "describe where foreign(X) and unmarried(X).",
        ),
        (
            "Could an honor student be foreign?",
            "describe where honor(X) and foreign(X).",
        ),
        (
            "What is the difference between honor and Dean's-List students?",
            "compare (describe honor(X)) with (describe deans_list(X)).",
        ),
        (
            "Is honor status necessary for teaching assistantship?",
            "describe can_ta(X, Y) where not honor(X).",
        ),
        (
            "What follows from honor status?",
            "describe * where honor(X).",
        ),
    ];

    for (title, query) in queries {
        println!("── {title}");
        println!("   {query}");
        match kb.run(query) {
            Ok(answer) => println!("{answer}"),
            Err(e) => println!("   error: {e}\n"),
        }
    }
    Ok(())
}
