//! The introduction's routing database: recursive reachability, queried
//! both for data and for knowledge.
//!
//! Run with `cargo run --example routing`.

use qdk::datasets;

fn main() -> Result<(), qdk::LangError> {
    // Plain (asymmetric) reachability.
    let mut kb = datasets::routing(false);

    println!("── List all points reachable from lax (data)");
    println!("{}", kb.run("retrieve reachable(lax, Y).")?);

    println!("── Do you know how to get from any point to any other point?");
    println!("   (a query on the availability of a definition of reachability)");
    // The knowledge query: describe reachable — the definition exists and
    // is printed; a database without the concept would error.
    println!("{}", kb.run("describe reachable(X, Y).")?);

    println!("── When X is reachable from Y, is Y reachable from X?  (asymmetric network)");
    let a = kb.run("describe reachable(X, Y) where reachable(Y, X).")?;
    let guaranteed = a
        .as_knowledge()
        .map(|k| k.theorems.iter().any(|t| t.rule.body.is_empty()))
        .unwrap_or(false);
    println!("   guaranteed: {guaranteed}  (no unconditional theorem was derived)\n{a}");

    // Now the symmetric network: the symmetric rule is knowledge, and the
    // same describe query detects the guarantee.
    let mut kb = datasets::routing(true);
    println!("── Same question, after adding reachable(X, Y) :- reachable(Y, X).");
    let a = kb.run("describe reachable(X, Y) where reachable(Y, X).")?;
    let guaranteed = a
        .as_knowledge()
        .map(|k| k.theorems.iter().any(|t| t.rule.body.is_empty()))
        .unwrap_or(false);
    println!("   guaranteed: {guaranteed}\n{a}");

    // Recursive knowledge query on the flight network (Algorithm 2).
    let mut kb = datasets::routing(false);
    println!("── When is X reachable from Y, given sfo is reachable from Y?");
    println!(
        "{}",
        kb.run("describe reachable(X, Y) where reachable(sfo, Y).")?
    );

    Ok(())
}
