//! Durability walkthrough: open a knowledge base on disk, kill the
//! session without any shutdown protocol, and reopen to exactly the
//! acknowledged history — first from a pure WAL replay, then from a
//! checkpoint plus the log tail.
//!
//! Run with `cargo run --example durable`.

use qdk::{Mutation, Request, Session};

fn main() -> qdk::Result<()> {
    let dir = std::env::temp_dir().join(format!("qdk-durable-example-{}", std::process::id()));

    // First life: open a durable store and teach it the university
    // schema. Every mutation is validated, appended to the write-ahead
    // log, and only then applied — the drop at the end of this block
    // stands in for `kill -9`.
    {
        let mut session = Session::open(&dir)?;
        session.load(
            "predicate student(Sname, Major, Gpa) key 1.
             predicate enroll(Sname, Ctitle).

             student(ann, math, 3.9).
             student(bob, physics, 3.5).
             student(cara, math, 3.8).
             enroll(ann, databases).
             enroll(bob, databases).

             honor(X) :- student(X, Y, Z), Z > 3.7.",
        )?;
        println!("first life: {} mutations logged", {
            let m = session.knowledge_base().durability_metrics().unwrap();
            m.wal_appends
        });
    } // <- process "dies" here; nothing was checkpointed

    // Second life: recovery replays the log through the same code paths
    // live mutation uses, so data and knowledge queries answer as if the
    // crash never happened.
    let mut session = Session::open(&dir)?;
    let report = session.recovery_report().unwrap();
    println!(
        "second life: recovered {} op(s) from the WAL ({} from checkpoint)",
        report.replayed, report.checkpointed
    );

    println!("retrieve honor(X).");
    println!("{}", session.retrieve(Request::subject("honor(X)"))?);
    println!("describe honor(X).");
    println!("{}", session.describe(Request::subject("honor(X)"))?);

    // Mutate, snapshot, mutate again: the checkpoint truncates the log,
    // so the next open loads the snapshot and replays only the tail. The
    // unified mutation builder goes through the same WAL discipline as
    // the statement language — and reports what incremental maintenance
    // did alongside.
    let applied = session.apply(Mutation::new().insert("student(dana, math, 3.95)"))?;
    println!(
        "applied: {} fact(s) stored, {} derived fact(s) added incrementally",
        applied.inserted, applied.maintenance.derived_added
    );
    let (lsn, bytes) = session.checkpoint()?.unwrap();
    println!("checkpoint at {lsn} ({bytes} bytes); WAL truncated");
    session.apply(Mutation::new().retract("enroll(bob, databases)"))?;

    // Third life: checkpoint + tail.
    drop(session);
    let session = Session::open(&dir)?;
    let report = session.recovery_report().unwrap();
    println!(
        "third life: {} op(s) from checkpoint + {} replayed from the tail",
        report.checkpointed, report.replayed
    );
    println!("retrieve honor(X).");
    println!("{}", session.retrieve(Request::subject("honor(X)"))?);

    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
