//! An interactive shell over the unified query language.
//!
//! Run with `cargo run --example repl`, then type statements ending in
//! `.` — declarations, facts, rules, `retrieve`, `describe`, `compare`.
//! `:load university` / `:load routing` loads a sample dataset; `:quit`
//! exits.

use qdk::{datasets, KnowledgeBase};
use std::io::{self, BufRead, Write};

fn main() -> io::Result<()> {
    let mut kb = KnowledgeBase::new();
    let stdin = io::stdin();
    let mut buffer = String::new();

    println!("Querying Database Knowledge — unified retrieve/describe shell");
    println!("Type statements ending in '.', or :load university | :load routing | :quit");
    print!("> ");
    io::stdout().flush()?;

    for line in stdin.lock().lines() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed == ":quit" || trimmed == ":q" {
            break;
        }
        if let Some(name) = trimmed.strip_prefix(":load ") {
            match name.trim() {
                "university" => {
                    kb = datasets::university_extended();
                    println!("loaded the university database (§2.2 + extensions)");
                }
                "routing" => {
                    kb = datasets::routing(false);
                    println!("loaded the routing database");
                }
                other => println!("unknown dataset: {other}"),
            }
            buffer.clear();
            print!("> ");
            io::stdout().flush()?;
            continue;
        }

        buffer.push_str(&line);
        buffer.push('\n');
        // A statement is complete when it ends with a period (floats are
        // handled by the real lexer; this is only a heuristic for when to
        // submit).
        if trimmed.ends_with('.') {
            match kb.run(&buffer) {
                Ok(answer) => print!("{answer}"),
                Err(e) => println!("error: {e}"),
            }
            buffer.clear();
        }
        print!("> ");
        io::stdout().flush()?;
    }
    Ok(())
}
