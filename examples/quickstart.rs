//! Quickstart: the twin statements on a small knowledge base, asked
//! through the [`qdk::Session`] facade — one request shape for both.
//!
//! Run with `cargo run --example quickstart`.

use qdk::{Mutation, Request, Session};

fn main() -> qdk::Result<()> {
    let mut session = Session::new();

    // Declare the extensional schema, store facts, define knowledge.
    session.load(
        "predicate student(Sname, Major, Gpa) key 1.
         predicate enroll(Sname, Ctitle).

         student(ann, math, 3.9).
         student(bob, physics, 3.5).
         student(cara, math, 3.8).
         enroll(ann, databases).
         enroll(bob, databases).

         honor(X) :- student(X, Y, Z), Z > 3.7.",
    )?;

    // The two English questions from the paper's introduction:
    //
    //   "Who are the honor students?"        — a data query.
    //   "What does it take to be an honor student?" — a knowledge query.
    //
    // Both are asked through the same instrument; the twin calls differ
    // only in the method name.
    println!("retrieve honor(X).");
    println!("{}", session.retrieve(Request::subject("honor(X)"))?);

    println!("describe honor(X).");
    println!("{}", session.describe(Request::subject("honor(X)"))?);

    // A knowledge query with a hypothesis: what does honor status mean
    // *for math students with GPA above 3.8*? The implied comparison is
    // simplified away.
    println!("describe honor(X) where student(X, math, V) and V > 3.8.");
    println!(
        "{}",
        session
            .describe(Request::subject("honor(X)").where_clause("student(X, math, V), V > 3.8"))?
    );

    // And one that contradicts the knowledge: honor students with a GPA
    // below 3.5 cannot exist.
    println!("describe honor(X) where student(X, math, V) and V < 3.5.");
    println!(
        "{}",
        session
            .describe(Request::subject("honor(X)").where_clause("student(X, math, V), V < 3.5"))?
    );

    // Mutating a live knowledge base: one builder for inserts, retracts
    // and rules, applied atomically. The first apply materializes the
    // incrementally maintained derived state; the report shows how the
    // changes propagated instead of forcing re-evaluation.
    let applied = session.apply(
        Mutation::new()
            .insert("student(dana, math, 3.95)")
            .retract("student(bob, physics, 3.5)"),
    )?;
    println!(
        "applied: {} stored, {} retracted; derived facts: {} added, {} deleted, {} rederived",
        applied.inserted,
        applied.retracted,
        applied.maintenance.derived_added,
        applied.maintenance.derived_deleted,
        applied.maintenance.rederived,
    );
    println!("retrieve honor(X).");
    println!("{}", session.retrieve(Request::subject("honor(X)"))?);

    Ok(())
}
