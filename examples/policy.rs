//! Access-control policy auditing — a modern workload where the paper's
//! `describe` statement shines: security reviewers ask what a policy
//! *means*, not just who it currently matches.
//!
//! Run with `cargo run --example policy`.

use qdk::KnowledgeBase;

fn main() -> Result<(), qdk::LangError> {
    let mut kb = KnowledgeBase::new();
    kb.load(
        "predicate employee(Name, Dept, Level) key 1.
         predicate member(Name, Group).
         predicate owns(Group, Resource).
         predicate clearance(Name, Rating) key 1.

         employee(ada, engineering, 7).
         employee(bo, engineering, 4).
         employee(cy, finance, 6).
         employee(dee, finance, 3).

         member(ada, platform).
         member(bo, platform).
         member(cy, audit).

         owns(platform, build_system).
         owns(audit, ledgers).

         clearance(ada, 3).
         clearance(bo, 1).
         clearance(cy, 3).
         clearance(dee, 2).

         % The policy knowledge.
         senior(X) :- employee(X, D, L), L > 5.
         trusted(X) :- clearance(X, R), R >= 3.
         admin(X) :- senior(X), trusted(X).
         can_read(X, R) :- member(X, G), owns(G, R).
         can_write(X, R) :- can_read(X, R), trusted(X).
         can_write(X, R) :- admin(X), owns(G, R).

         % Compliance rule: nobody below clearance 2 may be an admin.
         :- admin(X), clearance(X, R), R < 2.",
    )?;

    println!("── Who can write to the build system?  (data)");
    println!("{}", kb.run("retrieve can_write(X, build_system).")?);

    println!("── What does it take to write to a resource?  (knowledge)");
    println!("{}", kb.run("describe can_write(X, R).")?);

    println!("── When can a *senior* employee write?  (knowledge under a hypothesis)");
    println!("{}", kb.run("describe can_write(X, R) where senior(X).")?);

    println!("── Is trust necessary for write access?");
    println!(
        "{}",
        kb.run("describe can_write(X, R) where not trusted(X).")?
    );

    println!("── Could someone with clearance 1 become an admin?");
    println!(
        "{}",
        kb.run("describe where clearance(X, R) and R < 2 and admin(X).")?
    );

    println!("── How do 'admin' and 'trusted' relate?");
    println!(
        "{}",
        kb.run("compare (describe admin(X)) with (describe trusted(X)).")?
    );

    println!("── Audit trail: why is the senior-write theorem true?");
    let a = kb.run("describe can_write(X, R) where senior(X).")?;
    if let qdk::Answer::Knowledge(k) = &a {
        for t in &k.theorems {
            print!("{}", t.explain());
        }
    }

    Ok(())
}
